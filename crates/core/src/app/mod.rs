//! The Seaweed protocol state machine.
//!
//! One [`Seaweed`] value holds the protocol state of *every* endsystem in
//! the simulation (the simulator is monolithic; see DESIGN.md). State is
//! strictly partitioned per endsystem except for three documented global
//! registries that stand in for state the real system persists or
//! replicates:
//!
//! * the **query registry** — in the real system every endsystem that has
//!   seen a query stores its text and origin; we store one copy and track
//!   per-endsystem knowledge in a bitmask;
//! * **metadata contents** — replica holders store copies of summaries
//!   and availability models; contents are identical everywhere, so we
//!   store them once and track *who holds what* exactly (a holder that
//!   never received a push cannot answer);
//! * **vertex state** — aggregation-tree vertices are replica groups; we
//!   store each vertex's child map once plus its live holder set, and the
//!   state is lost if every holder fails, exactly as in the real system.

mod backoff;
mod disseminate;
mod metadata;
mod results;
mod storage;
mod storm;

pub use storm::{StormConfig, Submission};

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seaweed_availability::{AvailabilityModel, ModelConfig, ReplyLatencyStats};
use seaweed_overlay::{is_overlay_tag, Overlay, OverlayEvent, OverlayMsg, SelectionKind};
use seaweed_sim::{Engine, Event, NodeIdx};
use seaweed_store::{Aggregate, BoundQuery, Query};
use seaweed_types::{sha1, Duration, Id, IdRange, Time};

use crate::obs::QueryTimeline;
use crate::predictor::Predictor;
use crate::provider::DataProvider;
use storage::{NodeQueryStore, SubmitStore, TaskStore, VertexStore};

/// Engine type the full Seaweed stack runs on.
pub type SeaweedEngine = Engine<OverlayMsg<SeaweedMsg>>;

/// Handle to an injected query: a slot index in the low `SLOT_BITS` (8)
/// bits plus a per-slot generation counter above. The generation
/// invalidates every handle minted for a query once its slot is recycled
/// (storm mode retires and reuses slots), so late traffic addressed to a
/// dead query can never attribute work to its slot's next tenant.
/// Without storm mode slots are never recycled, every generation is 0
/// and a handle is numerically the plain registry index it always was.
pub type QueryHandle = u32;

/// Low bits of a [`QueryHandle`] carrying the slot index. 8 bits cover
/// the 64-slot registry with room to spare; everything above is the
/// generation.
pub(crate) const SLOT_BITS: u32 = 8;

/// The slot index a handle addresses (valid whatever its generation).
#[inline]
#[must_use]
pub(crate) fn slot_of(h: QueryHandle) -> u32 {
    h & ((1 << SLOT_BITS) - 1)
}

/// The generation a handle was minted under.
#[inline]
#[must_use]
pub(crate) fn gen_of(h: QueryHandle) -> u32 {
    h >> SLOT_BITS
}

/// Packs a slot and generation into a handle. Generation 0 handles are
/// numerically equal to their slot, which keeps every pre-storm Debug
/// rendering, fingerprint and bitmask byte-identical.
#[inline]
#[must_use]
pub(crate) fn make_handle(slot: u32, generation: u32) -> QueryHandle {
    (generation << SLOT_BITS) | slot
}

/// Handle to a registered replicated view.
pub type ViewHandle = u32;

/// A registered replicated view: a NOW()-free single-table aggregate
/// every endsystem pre-computes and replicates with its metadata.
#[derive(Debug)]
pub struct ViewDef {
    pub text: String,
    pub bound: BoundQuery,
}

/// Seaweed protocol messages (application payloads over the overlay).
/// `Clone` lets the engine's fault layer deliver duplicated copies.
#[derive(Clone, Debug)]
pub enum SeaweedMsg {
    /// Periodic / on-join metadata push from `owner` to a replica-set
    /// member.
    MetaPush { owner: NodeIdx },
    /// Query dissemination for a namespace range; `parent` is where the
    /// range's predictor must be reported.
    Disseminate {
        query: QueryHandle,
        range: IdRange,
        parent: NodeIdx,
    },
    /// Aggregated predictor for `range`, child → parent in the
    /// dissemination tree. The predictor is boxed: it embeds the
    /// bucket-edge table (~600 bytes), and an unboxed payload would set
    /// the size of *every* queued engine event — messages and timers
    /// alike — to the largest variant, multiplying the event queue's
    /// working set ~5× under concurrent query load.
    PredictorReport {
        query: QueryHandle,
        range: IdRange,
        predictor: Box<Predictor>,
    },
    /// The aggregated predictor arriving at the query's origin (boxed
    /// for the same reason as [`SeaweedMsg::PredictorReport`]).
    PredictorToOrigin {
        query: QueryHandle,
        predictor: Box<Predictor>,
    },
    /// Aggregated replicated-view values for `range`, child → parent in
    /// the dissemination tree (view queries only).
    ViewReport {
        query: QueryHandle,
        range: IdRange,
        agg: Aggregate,
        endsystems: u64,
    },
    /// The aggregated view answer arriving at the query's origin.
    ViewToOrigin {
        query: QueryHandle,
        agg: Aggregate,
        endsystems: u64,
    },
    /// A partial aggregate submitted to aggregation-tree vertex `vertex`.
    ResultSubmit {
        query: QueryHandle,
        vertex: Id,
        child: Id,
        version: u64,
        agg: Aggregate,
    },
    /// Ack of a result submission (primary → submitter).
    ResultAck {
        query: QueryHandle,
        vertex: Id,
        child: Id,
        version: u64,
    },
    /// Vertex state replication to a backup group member.
    VertexReplicate { query: QueryHandle, vertex: Id },
    /// The root vertex's current aggregate pushed to the query origin.
    ResultToOrigin {
        query: QueryHandle,
        agg: Aggregate,
        version: u64,
    },
    /// A newly joined endsystem asking a neighbor for active queries.
    QueryListPull,
    /// The active-query list.
    QueryListPush { queries: Vec<QueryHandle> },
}

// Every queued engine event — message or timer — is sized by the largest
// `SeaweedMsg` variant, and a query storm keeps hundreds of thousands of
// them in flight. Keep fat payloads (the predictor and its inline bucket
// table) behind a `Box` so the queue's working set stays lean; this
// tripped at 656 bytes once and cost ~5× the event-queue memory.
const _: () = assert!(std::mem::size_of::<SeaweedMsg>() <= 128);

/// Seaweed configuration; defaults are the paper's (§4.3.1).
#[derive(Clone, Debug)]
pub struct SeaweedConfig {
    /// Metadata replication factor k (paper: 8).
    pub k_metadata: usize,
    /// Aggregation-vertex replica group size m, primary included
    /// (paper: 3).
    pub m_vertex: usize,
    /// Mean metadata push period (paper: 17.5 min average, randomized
    /// phase).
    pub push_period: Duration,
    /// Timeout before a dissemination parent reissues a silent subrange.
    pub dissem_timeout: Duration,
    /// Maximum reissues per subrange before giving up.
    pub max_reissues: u8,
    /// Initial timeout before an unacked result submission is
    /// retransmitted; doubles per retry (with seeded jitter) up to
    /// [`result_retry_cap`](Self::result_retry_cap).
    pub result_retry: Duration,
    /// Ceiling of the result-retransmission backoff. Setting it equal to
    /// `result_retry` degenerates to the fixed-interval retry.
    pub result_retry_cap: Duration,
    /// Local processing delay between receiving a query and submitting
    /// the locally executed result.
    pub local_exec_delay: Duration,
    /// Hedged dissemination: when a delegated subrange stays silent past
    /// the expected-reply quantile, duplicate the task to a backup cover
    /// candidate instead of waiting out the full reissue timeout. `None`
    /// (the default) disables hedging and preserves the pre-hedging
    /// message and timer stream bit-for-bit.
    pub hedge: Option<HedgeConfig>,
    /// Concurrent multi-query (storm) mode: admission control at the
    /// injection point, slot recycling behind handle generations, and
    /// the per-endsystem quantum scan scheduler. `None` (the default)
    /// disables all of it and preserves the single-query event stream
    /// bit-for-bit; even with it on, an uncontended endsystem executes
    /// exactly the baseline path.
    pub storm: Option<StormConfig>,
    /// Availability-model tuning.
    pub model: ModelConfig,
    pub seed: u64,
}

/// Tuning for hedged dissemination (tail-tolerant querying).
#[derive(Clone, Debug)]
pub struct HedgeConfig {
    /// Reply-latency quantile to wait for before hedging (default p90 of
    /// the delegator's observed reply distribution).
    pub quantile: f64,
    /// Minimum completed-reply observations before the latency model is
    /// trusted for the quantile estimate.
    pub min_samples: u64,
    /// Hedge delay as a fraction of `dissem_timeout` while the delegator
    /// has fewer than `min_samples` observations.
    pub fallback_fraction: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            quantile: 0.9,
            min_samples: 4,
            fallback_fraction: 0.5,
        }
    }
}

impl Default for SeaweedConfig {
    fn default() -> Self {
        SeaweedConfig {
            k_metadata: 8,
            m_vertex: 3,
            push_period: Duration::from_secs(1050), // 17.5 min
            dissem_timeout: Duration::from_secs(5),
            max_reissues: 2,
            result_retry: Duration::from_secs(10),
            result_retry_cap: Duration::from_secs(160),
            local_exec_delay: Duration::from_millis(100),
            hedge: None,
            storm: None,
            model: ModelConfig::default(),
            seed: 0,
        }
    }
}

/// One-shot (the paper's focus) or continuous (§3.4's outlined
/// extension) execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryKind {
    /// Executed once per endsystem, results persist until the TTL.
    OneShot,
    /// Re-executed by every endsystem each `interval`, with `NOW()`
    /// re-bound per epoch; the aggregation tree's versioned child maps
    /// keep exactly the latest epoch per endsystem, so the origin sees a
    /// rolling aggregate. Epochs mix briefly at interval boundaries —
    /// the same dilated-snapshot semantics as the one-shot case.
    Continuous { interval: Duration },
    /// Answered entirely from *replicated view values* (§3.2.2's
    /// selective replication): every endsystem pre-computes the
    /// registered view's aggregate and replicates it with its metadata,
    /// so the query covers the whole population — including currently
    /// unavailable endsystems, at push-period staleness — within
    /// seconds, with no local execution phase.
    View { view: ViewHandle },
}

/// Origin-side view of one query.
#[derive(Debug)]
pub struct QueryState {
    pub id: Id,
    pub text: String,
    pub bound: BoundQuery,
    pub kind: QueryKind,
    /// Schema kept for per-epoch re-binding of continuous queries.
    pub schema: seaweed_store::Schema,
    pub origin: NodeIdx,
    pub injected: Time,
    pub expires: Time,
    pub active: bool,
    /// Aggregated completeness predictor, once it arrives.
    pub predictor: Option<Predictor>,
    /// When the predictor reached the origin (§4.3.3 latency metric).
    pub predictor_at: Option<Time>,
    /// Latest full aggregate seen at the origin.
    pub latest: Option<Aggregate>,
    /// Root-vertex version of `latest` (suppresses reordered updates).
    pub latest_version: u64,
    /// History of `(time, rows folded in, finished value)` at the origin.
    pub progress: Vec<(Time, u64, Option<f64>)>,
    /// Origin-side watchdog timer re-kicking a dissemination that has
    /// produced no result at all; armed only when tail tolerance is
    /// active, disarmed when the first aggregate lands.
    pub(crate) kick_timer: Option<AppTimer>,
    /// Full-range re-kicks the watchdog has issued for this query.
    pub kicks: u8,
}

impl QueryState {
    /// Rows folded into the latest result.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.latest.map_or(0, |a| a.rows)
    }

    /// Current completeness against the predictor's total estimate.
    #[must_use]
    pub fn completeness(&self) -> Option<f64> {
        let p = self.predictor.as_ref()?;
        let total = p.total_rows();
        if total <= 0.0 {
            return Some(1.0);
        }
        Some(self.rows() as f64 / total)
    }
}

/// Protocol counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeaweedStats {
    pub meta_pushes: u64,
    pub meta_repairs: u64,
    pub disseminate_msgs: u64,
    /// Application-payload bytes of dissemination messages (excluding
    /// per-hop overlay overhead).
    pub dissem_bytes: u64,
    /// Application-payload bytes of predictor reports.
    pub predictor_bytes: u64,
    pub dissem_reissues: u64,
    pub predictor_reports: u64,
    pub predictions_for_unavailable: u64,
    pub uncovered_unavailable: u64,
    pub result_submissions: u64,
    pub result_retries: u64,
    /// Local executions that failed at the provider; the contribution is
    /// dropped (and shows up as incompleteness), never a crash.
    pub exec_failures: u64,
    pub vertex_replications: u64,
    pub vertex_states_lost: u64,
    pub results_at_origin: u64,
    /// Crash-with-amnesia transitions (soft state wiped, unlike a clean
    /// shutdown/rejoin).
    pub amnesia_crashes: u64,
    /// Dissemination subranges abandoned after exhausting reissues.
    pub dissem_give_ups: u64,
    /// Backup dissemination sends issued by the hedging machinery.
    pub hedges_sent: u64,
    /// Hedged slots where the backup's reply arrived first.
    pub hedge_wins: u64,
    /// Hedged slots where the primary replied first (the hedge send was
    /// pure overhead).
    pub hedge_losses: u64,
    /// Application-payload bytes spent on hedges that lost the race,
    /// plus the loser's duplicate reply when it eventually lands.
    pub hedge_wasted_bytes: u64,
    /// Full-range dissemination re-kicks issued by the origin-side
    /// watchdog (the kickoff message is otherwise unretried).
    pub query_kicks: u64,
    /// Queries admitted into the bounded in-flight budget (storm mode;
    /// counts immediate admissions and queue promotions alike).
    pub storm_admitted: u64,
    /// Submissions parked in the deterministic admission queue because
    /// the in-flight budget was full.
    pub storm_queued: u64,
    /// Queued submissions abandoned at admission time (origin no longer
    /// up and joined, or the deferred bind failed).
    pub storm_dropped: u64,
    /// Messages and timer actions dropped because their handle's
    /// generation no longer matches the slot — late traffic for a
    /// retired query whose slot was recycled.
    pub stale_handle_drops: u64,
    /// Scan-scheduler quanta executed (one per pump-timer fire that
    /// found work).
    pub scan_quanta: u64,
    /// Shared table passes that served two or more co-resident queries.
    pub shared_scan_batches: u64,
    /// Query executions completed through shared passes (only counted
    /// when the pass actually batched, i.e. served ≥ 2).
    pub shared_scan_queries: u64,
    /// Messages dropped on a message-driven path whose internal
    /// invariant did not hold (the panic-free alternative to `expect`):
    /// always 0 in a healthy run, and a red flag — not routine churn
    /// fallout — when not.
    pub internal_drops: u64,
}

/// Deferred actions carried by application timers.
#[derive(Debug)]
pub(crate) enum TimerAction {
    MetaPush {
        node: NodeIdx,
    },
    DissemTimeout {
        node: NodeIdx,
        task: TaskKey,
    },
    /// The expected-reply quantile elapsed with subranges still silent:
    /// duplicate them to backup cover candidates. Armed only when
    /// `SeaweedConfig::hedge` is set.
    HedgeTimeout {
        node: NodeIdx,
        task: TaskKey,
    },
    /// No aggregated result has reached the origin within the reissue
    /// timeout: re-kick the full-range dissemination. The kickoff is a
    /// single unretried message and the query root's task dies with the
    /// root (crash-with-amnesia), so without this watchdog an unlucky
    /// root crash silences the whole query. Armed only when tail
    /// tolerance is active.
    QueryKick {
        node: NodeIdx,
        query: QueryHandle,
    },
    ExecuteLocal {
        node: NodeIdx,
        query: QueryHandle,
    },
    ResultRetry {
        node: NodeIdx,
        query: QueryHandle,
        child: Id,
        version: u64,
    },
    QueryExpire {
        query: QueryHandle,
    },
    /// A scan-scheduler quantum elapsed at `node`: advance the node's
    /// queued local executions by one fair round. Armed through the
    /// engine's quantum timer class (storm mode only).
    ScanQuantum {
        node: NodeIdx,
    },
}

impl TimerAction {
    /// The node whose liveness this action is tied to; `None` for
    /// actions that must survive churn (query expiry).
    fn node(&self) -> Option<NodeIdx> {
        match *self {
            TimerAction::MetaPush { node }
            | TimerAction::DissemTimeout { node, .. }
            | TimerAction::HedgeTimeout { node, .. }
            | TimerAction::QueryKick { node, .. }
            | TimerAction::ExecuteLocal { node, .. }
            | TimerAction::ResultRetry { node, .. }
            | TimerAction::ScanQuantum { node } => Some(node),
            TimerAction::QueryExpire { .. } => None,
        }
    }

    /// The query slot this deferred action references, if any — used to
    /// purge armed actions when a slot is released for recycling (the
    /// engine-level timers then fire as no-ops, exactly like the
    /// baseline's post-expiry timers).
    fn query_slot(&self) -> Option<u32> {
        match *self {
            TimerAction::DissemTimeout { task, .. } | TimerAction::HedgeTimeout { task, .. } => {
                Some(slot_of(task.1))
            }
            TimerAction::QueryKick { query, .. }
            | TimerAction::ExecuteLocal { query, .. }
            | TimerAction::ResultRetry { query, .. }
            | TimerAction::QueryExpire { query } => Some(slot_of(query)),
            TimerAction::MetaPush { .. } | TimerAction::ScanQuantum { .. } => None,
        }
    }
}

/// An armed application timer: the app-layer tag (key into
/// `Seaweed::timers`) plus the engine handle, retained so hedging can
/// disarm the loser of a reply race instead of letting it fire as a
/// no-op.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AppTimer {
    pub seq: u64,
    pub handle: seaweed_sim::TimerHandle,
}

/// Key of a dissemination task: (node, query, range start, range width —
/// 0 encodes the full namespace). Width matters: a subrange shares its
/// parent's start, and both can be live tasks at one node.
pub(crate) type TaskKey = (u32, QueryHandle, u128, u128);

/// What a dissemination subtree reports upward: a completeness predictor
/// (normal queries) or a partial aggregate over replicated view values
/// (view queries, the §3.2.2 selective-replication extension). Both are
/// constant-size and merge element-wise, so the same tree machinery
/// carries either.
#[derive(Debug, Clone)]
pub(crate) enum RangeResult {
    Predictor(Box<Predictor>),
    /// `(aggregate, endsystems covered)`.
    View(Aggregate, u64),
}

impl RangeResult {
    pub(crate) fn merge(&mut self, other: &RangeResult) {
        match (self, other) {
            (RangeResult::Predictor(a), RangeResult::Predictor(b)) => a.merge(b),
            (RangeResult::View(a, na), RangeResult::View(b, nb)) => {
                a.merge(b);
                *na += nb;
            }
            _ => debug_assert!(false, "mixed range-result kinds"),
        }
    }
}

/// One dissemination task at one node: a received range being split,
/// estimated and reported.
#[derive(Debug)]
pub(crate) struct DissemTask {
    pub parent: Option<NodeIdx>,
    /// Additional delegators that handed us the same range (hedges and
    /// availability-aware re-routes can converge on one executor); every
    /// report fans out to these too. Always empty with tail tolerance
    /// off — the baseline swallows duplicate delegations silently.
    pub extra_parents: Vec<NodeIdx>,
    pub range: IdRange,
    /// Outstanding subranges delegated to other nodes.
    pub slots: Vec<SubrangeSlot>,
    /// Locally accumulated result (own contribution + dead ranges).
    pub local: RangeResult,
    pub reported: bool,
    /// Memoized `local ⊕ slots` merge from the last report, reused
    /// verbatim when a lost report is retransmitted. Invalidated whenever
    /// a slot's `done` result changes (fill, give-up, heal re-open) so it
    /// can never drift from the canonical local-then-slot-order merge.
    pub cached: Option<RangeResult>,
    /// The armed reissue timer, kept so hedged mode can disarm it when
    /// the task reports. `None` once fired, cancelled or never armed.
    pub timeout_timer: Option<AppTimer>,
    /// The armed hedge timer (hedged mode only).
    pub hedge_timer: Option<AppTimer>,
}

#[derive(Debug)]
pub(crate) struct SubrangeSlot {
    pub range: IdRange,
    pub done: Option<RangeResult>,
    pub reissues: u8,
    /// When the current outstanding delegation was (re)sent; feeds the
    /// per-delegator reply-latency model on fill.
    pub sent_at: Time,
    /// Backup cover candidate this slot was hedged to, if any. At most
    /// one hedge per slot.
    pub hedge: Option<NodeIdx>,
}

/// Aggregation-tree vertex state (a replica group's contents).
#[derive(Debug, Default)]
pub(crate) struct VertexState {
    /// child key -> (version, partial aggregate).
    pub children: BTreeMap<Id, (u64, Aggregate)>,
    /// Live group members; index 0 acts as primary.
    pub holders: Vec<NodeIdx>,
    /// Version of the last aggregate propagated upward.
    pub out_version: u64,
    /// Memoized merge of `children` in ascending key order. Kept exactly
    /// in sync by the submit path: a report appending a child *after* the
    /// current maximum key extends the fold in place (bit-identical to a
    /// full recompute, since f64 merge order is unchanged); any other
    /// mutation — mid-map insert or in-place replacement — clears it, and
    /// the next propagation recomputes from scratch.
    pub cached: Option<Aggregate>,
}

/// A pending (unacked) upward submission from a vertex or leaf, keyed by
/// `(submitting node, query, child key)` — one node can have several in
/// flight per query (its own leaf plus vertices it primaries).
#[derive(Debug)]
pub(crate) struct PendingSubmit {
    pub target_vertex: Id,
    pub version: u64,
    pub agg: Aggregate,
    /// Retransmissions so far; drives the exponential backoff.
    pub attempts: u32,
}

/// The full Seaweed protocol state over all endsystems.
pub struct Seaweed<P: DataProvider> {
    pub cfg: SeaweedConfig,
    pub overlay: Overlay,
    pub provider: P,

    // ---- metadata plane ----
    pub(crate) models: Vec<AvailabilityModel>,
    pub(crate) down_since: Vec<Option<Time>>,
    /// Who currently holds each owner's metadata.
    pub(crate) holders: Vec<Vec<NodeIdx>>,
    /// Reverse index: owners whose metadata each node holds.
    pub(crate) held_by: Vec<Vec<NodeIdx>>,

    // ---- query plane ----
    pub(crate) queries: Vec<QueryState>,
    /// Lifecycle timelines, parallel to `queries`. Pure observation:
    /// never read by protocol decisions.
    pub(crate) timelines: Vec<QueryTimeline>,
    pub(crate) query_by_id: BTreeMap<Id, QueryHandle>,
    /// Bitmask per node of queries it has seen (bit = handle).
    pub(crate) knows_query: Vec<u64>,
    /// Bitmask per node of queries whose result it has submitted (acked).
    pub(crate) submitted: Vec<u64>,
    /// Bitmask per node of queries whose local execution is scheduled or
    /// in flight.
    pub(crate) exec_pending: Vec<u64>,
    pub(crate) tasks: TaskStore,
    pub(crate) vertices: VertexStore,
    pub(crate) node_vertices: Vec<Vec<(QueryHandle, Id)>>,
    pub(crate) pending_submits: SubmitStore,
    /// Latest epoch each endsystem has executed for a continuous query.
    pub(crate) cont_epoch: NodeQueryStore<u64>,
    /// The aggregation-tree vertex each endsystem persisted for its leaf
    /// submissions (§3.4: "It then persists that vertexId with the
    /// query") — reused across availability sessions so a rejoining
    /// endsystem updates the *same* child slot instead of forking a new
    /// tree path. Survives crash-amnesia: it is persisted with the
    /// query, not soft state.
    pub(crate) leaf_targets: NodeQueryStore<Id>,
    /// Dissemination subranges abandoned after exhausting reissues
    /// (`(issuing node, query, range)` in give-up order). A partition
    /// can swallow a whole subtree of the broadcast; at heal time each
    /// recorded range is re-issued so the endsystems behind the cut
    /// still learn the query and contribute results.
    pub(crate) gave_up: Vec<(NodeIdx, QueryHandle, IdRange)>,

    // ---- storm mode (concurrent multi-query) ----
    /// Per-slot generation counter, parallel to `queries`. Bumped when a
    /// slot is released for recycling; handles minted under an older
    /// generation are dropped at every message boundary. All zero (and
    /// never bumped) without storm mode.
    pub(crate) slot_gen: Vec<u32>,
    /// Released slots available for reuse, sorted descending so `pop()`
    /// yields the lowest slot first (deterministic recycling order).
    /// Always empty without storm mode.
    pub(crate) free_slots: Vec<u32>,
    /// Submissions waiting for an in-flight slot, in ticket order.
    pub(crate) storm_queue: VecDeque<storm::QueuedSubmission>,
    /// Monotone ticket counter for queued submissions.
    pub(crate) storm_seq: u64,
    /// `(ticket, handle)` pairs admitted from the queue since the last
    /// [`Seaweed::drain_admissions`] call.
    pub(crate) admitted_log: Vec<(u64, QueryHandle)>,
    /// Per-endsystem scan-scheduler state (quantum queue + pump flag).
    /// Untouched without storm mode.
    pub(crate) scan: Vec<storm::ScanNode>,

    // ---- crash-amnesia bookkeeping ----
    /// Owners whose metadata a crashed node was holding when its soft
    /// state was wiped. Holder lists are pruned at crash time (the copies
    /// are gone *now*); the stash lets failure detection still run the
    /// re-replication repair for those owners. Cleared on rejoin.
    pub(crate) amnesia_meta: Vec<Vec<NodeIdx>>,
    /// Vertex groups a crashed node belonged to when its soft state was
    /// wiped; consumed by detection-time vertex repair. Cleared on
    /// rejoin.
    pub(crate) amnesia_vertices: Vec<Vec<(QueryHandle, Id)>>,

    // ---- replicated views (§3.2.2 selective replication) ----
    pub(crate) views: Vec<ViewDef>,
    /// `[view][node]` last value pushed with the node's metadata; `None`
    /// until its first push.
    pub(crate) view_values: Vec<Vec<Option<Aggregate>>>,

    // ---- timers ----
    pub(crate) timers: BTreeMap<u64, TimerAction>,
    timer_seq: u64,

    // ---- tail tolerance ----
    /// Per-delegator observed reply-latency distributions; drives the
    /// hedge delay. Maintained passively even with hedging off (reads
    /// never influence the protocol unless `cfg.hedge` is set).
    pub(crate) reply_lat: ReplyLatencyStats,

    pub(crate) rng: StdRng,
    pub stats: SeaweedStats,
}

/// Manual impl: `P` (the data provider) need not be `Debug`, and the
/// per-endsystem state tables are enormous — summarize the registries.
impl<P: DataProvider> std::fmt::Debug for Seaweed<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Seaweed")
            .field("endsystems", &self.overlay.ids().len())
            .field("queries", &self.queries.len())
            .field("tasks", &self.tasks.len())
            .field("vertices", &self.vertices.len())
            .field("pending_submits", &self.pending_submits.len())
            .field("views", &self.views.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// RNG stream constant for the protocol layer's own draws (registered
/// in lint.toml `[[stream]]`): keeps the app's draw order decoupled
/// from the engine's and overlay's streams.
const APP_STREAM: u64 = 0x05ea_eeda_4400;

impl<P: DataProvider> Seaweed<P> {
    /// Builds the protocol layer over an overlay and data provider. All
    /// endsystems start down; drive the engine with an availability
    /// trace.
    #[must_use]
    pub fn new(overlay: Overlay, provider: P, cfg: SeaweedConfig) -> Self {
        let n = overlay.ids().len();
        // Hot-state container backend; the overlay's ring index (which
        // asserts id uniqueness) doubles as the ordered id universe for
        // range enumeration, so no separate id map is kept here.
        let layout = overlay.config().layout;
        Seaweed {
            rng: StdRng::seed_from_u64(cfg.seed ^ APP_STREAM),
            models: (0..n).map(|_| AvailabilityModel::new(cfg.model)).collect(),
            cfg,
            overlay,
            provider,
            down_since: vec![Some(Time::ZERO); n],
            holders: vec![Vec::new(); n],
            held_by: vec![Vec::new(); n],
            queries: Vec::new(),
            timelines: Vec::new(),
            query_by_id: BTreeMap::new(),
            knows_query: vec![0; n],
            submitted: vec![0; n],
            exec_pending: vec![0; n],
            tasks: TaskStore::new(layout, n),
            vertices: VertexStore::new(layout),
            node_vertices: vec![Vec::new(); n],
            pending_submits: SubmitStore::new(layout, n),
            cont_epoch: NodeQueryStore::new(layout, n),
            leaf_targets: NodeQueryStore::new(layout, n),
            gave_up: Vec::new(),
            slot_gen: Vec::new(),
            free_slots: Vec::new(),
            storm_queue: VecDeque::new(),
            storm_seq: 0,
            admitted_log: Vec::new(),
            scan: vec![storm::ScanNode::default(); n],
            amnesia_meta: vec![Vec::new(); n],
            amnesia_vertices: vec![Vec::new(); n],
            views: Vec::new(),
            view_values: Vec::new(),
            timers: BTreeMap::new(),
            timer_seq: 0,
            reply_lat: ReplyLatencyStats::new(n),
            stats: SeaweedStats::default(),
        }
    }

    /// Read access to a query's origin-side state. Panics if the
    /// handle's slot was recycled (the state it referred to is gone).
    #[must_use]
    pub fn query(&self, h: QueryHandle) -> &QueryState {
        assert_eq!(
            gen_of(h),
            self.slot_gen[slot_of(h) as usize],
            "stale query handle: slot was recycled"
        );
        &self.queries[slot_of(h) as usize]
    }

    /// Read access to a query's lifecycle timeline. Panics on a stale
    /// (recycled-slot) handle.
    #[must_use]
    pub fn timeline(&self, h: QueryHandle) -> &QueryTimeline {
        assert_eq!(
            gen_of(h),
            self.slot_gen[slot_of(h) as usize],
            "stale query handle: slot was recycled"
        );
        &self.timelines[slot_of(h) as usize]
    }

    /// The slot a live handle addresses, or `None` if the handle is
    /// stale (its slot moved on to a newer generation) or out of range.
    /// Unlike [`Seaweed::check_handle`] this is for API-surface lookups
    /// and does not count drops.
    #[must_use]
    pub(crate) fn live_slot(&self, h: QueryHandle) -> Option<u32> {
        let slot = slot_of(h);
        ((slot as usize) < self.queries.len() && gen_of(h) == self.slot_gen[slot as usize])
            .then_some(slot)
    }

    /// The currently-valid wire handle for a slot: the slot plus its
    /// live generation. Every outgoing message embeds this, so replies
    /// to it can be generation-checked on arrival.
    #[must_use]
    pub(crate) fn live_handle(&self, slot: QueryHandle) -> QueryHandle {
        make_handle(slot_of(slot), self.slot_gen[slot_of(slot) as usize])
    }

    /// Validates an inbound handle at the message boundary: returns the
    /// slot if the generation matches, else counts a stale-handle drop.
    pub(crate) fn check_handle(&mut self, h: QueryHandle) -> Option<QueryHandle> {
        if let Some(slot) = self.live_slot(h) {
            return Some(slot);
        }
        self.stats.stale_handle_drops += 1;
        None
    }

    #[must_use]
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// The protocol layer's counters and per-query latency histograms as
    /// a [`seaweed_sim::MetricsRegistry`], for merging onto the engine's
    /// in run summaries.
    #[must_use]
    pub fn metrics(&self) -> seaweed_sim::MetricsRegistry {
        use seaweed_types::LogBuckets;
        let mut m = seaweed_sim::MetricsRegistry::new();
        let s = &self.stats;
        m.set_counter("app.meta_pushes", s.meta_pushes);
        m.set_counter("app.meta_repairs", s.meta_repairs);
        m.set_counter("app.disseminate_msgs", s.disseminate_msgs);
        m.set_counter("app.dissem_bytes", s.dissem_bytes);
        m.set_counter("app.predictor_bytes", s.predictor_bytes);
        m.set_counter("app.dissem_reissues", s.dissem_reissues);
        m.set_counter("app.predictor_reports", s.predictor_reports);
        m.set_counter(
            "app.predictions_for_unavailable",
            s.predictions_for_unavailable,
        );
        m.set_counter("app.uncovered_unavailable", s.uncovered_unavailable);
        m.set_counter("app.result_submissions", s.result_submissions);
        m.set_counter("app.result_retries", s.result_retries);
        m.set_counter("app.exec_failures", s.exec_failures);
        m.set_counter("app.vertex_replications", s.vertex_replications);
        m.set_counter("app.vertex_states_lost", s.vertex_states_lost);
        m.set_counter("app.results_at_origin", s.results_at_origin);
        m.set_counter("app.amnesia_crashes", s.amnesia_crashes);
        m.set_counter("app.dissem_give_ups", s.dissem_give_ups);
        m.set_counter("app.hedges_sent", s.hedges_sent);
        m.set_counter("app.hedge_wins", s.hedge_wins);
        m.set_counter("app.hedge_losses", s.hedge_losses);
        m.set_counter("app.hedge_wasted_bytes", s.hedge_wasted_bytes);
        m.set_counter("app.query_kicks", s.query_kicks);
        m.set_counter("app.storm_admitted", s.storm_admitted);
        m.set_counter("app.storm_queued", s.storm_queued);
        m.set_counter("app.storm_dropped", s.storm_dropped);
        m.set_counter("app.stale_handle_drops", s.stale_handle_drops);
        m.set_counter("app.scan_quanta", s.scan_quanta);
        m.set_counter("app.shared_scan_batches", s.shared_scan_batches);
        m.set_counter("app.shared_scan_queries", s.shared_scan_queries);
        m.set_counter("app.internal_drops", s.internal_drops);
        m.set_counter("app.queries_injected", self.queries.len() as u64);
        // Stage-latency histograms need sub-second resolution at the fast
        // end (predictors arrive in RTTs): 1 ms .. 1 day.
        let buckets = LogBuckets::new(Duration::MILLISECOND, Duration::from_days(1), 40);
        for (h, tl) in self.timelines.iter().enumerate() {
            if let Some(d) = tl.time_to_predictor() {
                m.observe_with("app.query.predictor_latency", buckets, d);
            }
            if let Some(d) = tl.time_to_first_result() {
                m.observe_with("app.query.first_result_latency", buckets, d);
            }
            let slo = self.slo_report(h as QueryHandle);
            if let Some(d) = slo.delay_to_c50 {
                m.observe_with("app.query.delay_to_c50", buckets, d);
            }
            if let Some(d) = slo.delay_to_c90 {
                m.observe_with("app.query.delay_to_c90", buckets, d);
            }
            if let Some(d) = slo.delay_to_c99 {
                m.observe_with("app.query.delay_to_c99", buckets, d);
            }
        }
        m
    }

    /// Per-query SLO report: delay-to-completeness percentile checkpoints
    /// (against the predictor's total-row estimate) plus hedging
    /// cost/benefit counters.
    #[must_use]
    pub fn slo_report(&self, h: QueryHandle) -> crate::obs::SloReport {
        let slot = slot_of(h) as usize;
        let total = self.queries[slot]
            .predictor
            .as_ref()
            .map_or(0.0, Predictor::total_rows);
        self.timelines[slot].slo_report(total)
    }

    /// Claims a query slot: the lowest released slot if any (storm mode
    /// recycles), else the next fresh registry index. Panics when the
    /// 64-slot space is exhausted — storm admission gates on capacity
    /// before calling, and the baseline keeps its historical 64-query
    /// assertion.
    fn alloc_slot(&mut self) -> u32 {
        if let Some(slot) = self.free_slots.pop() {
            return slot;
        }
        assert!(
            self.queries.len() < 64,
            "query registry is limited to 64 in-flight queries per run"
        );
        self.queries.len() as u32
    }

    /// Installs a query's origin-side state into `slot` (fresh push or
    /// recycled overwrite) and returns the generation-bearing handle.
    fn install_query(&mut self, slot: u32, state: QueryState, now: Time) -> QueryHandle {
        if slot as usize == self.queries.len() {
            self.queries.push(state);
            self.timelines.push(QueryTimeline::new(now));
            self.slot_gen.push(0);
        } else {
            self.queries[slot as usize] = state;
            self.timelines[slot as usize] = QueryTimeline::new(now);
        }
        make_handle(slot, self.slot_gen[slot as usize])
    }

    /// Injects a one-shot query at `origin` (which must be up and
    /// joined), alive for `ttl`. Returns the handle used in all
    /// origin-side accessors.
    pub fn inject_query(
        &mut self,
        eng: &mut SeaweedEngine,
        origin: NodeIdx,
        sql: &str,
        ttl: Duration,
        schema: &seaweed_store::Schema,
    ) -> Result<QueryHandle, seaweed_store::StoreError> {
        self.inject_with_kind(eng, origin, sql, ttl, schema, QueryKind::OneShot)
    }

    /// Injects a continuous query: every endsystem re-executes it each
    /// `interval` (with `NOW()` re-bound), and the origin's result rolls
    /// forward as epochs replace each endsystem's contribution in the
    /// aggregation tree. Requires a provider that can execute arbitrary
    /// bindings (e.g. `LiveTables`).
    pub fn inject_continuous_query(
        &mut self,
        eng: &mut SeaweedEngine,
        origin: NodeIdx,
        sql: &str,
        interval: Duration,
        ttl: Duration,
        schema: &seaweed_store::Schema,
    ) -> Result<QueryHandle, seaweed_store::StoreError> {
        assert!(interval.as_micros() > 0, "interval must be positive");
        self.inject_with_kind(
            eng,
            origin,
            sql,
            ttl,
            schema,
            QueryKind::Continuous { interval },
        )
    }

    /// Registers a replicated view (NOW()-free single-table aggregate).
    /// Every endsystem computes it and replicates the value with its
    /// metadata from the next push onward. Register views before
    /// endsystems come up so the first pushes already carry them.
    pub fn register_view(
        &mut self,
        sql: &str,
        schema: &seaweed_store::Schema,
    ) -> Result<ViewHandle, seaweed_store::StoreError> {
        let parsed = Query::parse(sql)?;
        let bound = parsed.bind(schema, 0)?;
        let handle = self.views.len() as ViewHandle;
        self.views.push(ViewDef {
            text: parsed.text,
            bound,
        });
        self.view_values.push(vec![None; self.knows_query.len()]);
        Ok(handle)
    }

    /// Queries a registered view: the answer covers every endsystem whose
    /// metadata is replicated — including currently-unavailable ones, at
    /// push-period staleness — and arrives in seconds.
    pub fn query_view(
        &mut self,
        eng: &mut SeaweedEngine,
        origin: NodeIdx,
        view: ViewHandle,
        ttl: Duration,
    ) -> QueryHandle {
        assert!((view as usize) < self.views.len(), "unknown view");
        assert!(eng.is_up(origin), "origin must be available");
        let def = &self.views[view as usize];
        // The query id folds in the view tag so a view query and a
        // regular query over the same text coexist.
        let id = sha1::id_of(format!("view:{}", def.text).as_bytes());
        let state = QueryState {
            id,
            text: def.text.clone(),
            bound: def.bound.clone(),
            kind: QueryKind::View { view },
            schema: seaweed_store::Schema::new("_view", Vec::new()),
            origin,
            injected: eng.now(),
            expires: eng.now() + ttl,
            active: true,
            predictor: None,
            predictor_at: None,
            latest: None,
            latest_version: 0,
            progress: Vec::new(),
            kick_timer: None,
            kicks: 0,
        };
        let slot = self.alloc_slot();
        let handle = self.install_query(slot, state, eng.now());
        self.query_by_id.insert(id, handle);
        // Internal machinery (timers, dissemination, bitmasks) runs on
        // slots; the generation only travels on the wire and in the
        // returned handle.
        self.set_detached_app_timer(eng, origin, ttl, TimerAction::QueryExpire { query: slot });
        self.start_dissemination(eng, origin, slot);
        self.arm_query_kick(eng, origin, slot);
        handle
    }

    fn inject_with_kind(
        &mut self,
        eng: &mut SeaweedEngine,
        origin: NodeIdx,
        sql: &str,
        ttl: Duration,
        schema: &seaweed_store::Schema,
        kind: QueryKind,
    ) -> Result<QueryHandle, seaweed_store::StoreError> {
        assert!(eng.is_up(origin), "origin must be available");
        let parsed = Query::parse(sql)?;
        if parsed.group_by.is_some() {
            // Grouped results are a local-engine feature; the in-network
            // aggregation carries scalar aggregates (§1.3: grouped /
            // multi-endsystem functionality belongs in a layer above).
            return Err(seaweed_store::StoreError::BadAggregate(
                "GROUP BY is not supported for distributed queries".into(),
            ));
        }
        let now_secs = (eng.now().as_micros() / 1_000_000) as i64;
        let bound = parsed.bind(schema, now_secs)?;
        let id = sha1::id_of(parsed.text.as_bytes());
        let state = QueryState {
            id,
            text: parsed.text,
            bound,
            kind,
            schema: schema.clone(),
            origin,
            injected: eng.now(),
            expires: eng.now() + ttl,
            active: true,
            predictor: None,
            predictor_at: None,
            latest: None,
            latest_version: 0,
            progress: Vec::new(),
            kick_timer: None,
            kicks: 0,
        };
        // Slot claimed only after parse/bind succeed, so a rejected
        // query can never leak a recycled slot.
        let slot = self.alloc_slot();
        let handle = self.install_query(slot, state, eng.now());
        self.query_by_id.insert(id, handle);
        self.set_detached_app_timer(eng, origin, ttl, TimerAction::QueryExpire { query: slot });
        self.start_dissemination(eng, origin, slot);
        self.arm_query_kick(eng, origin, slot);
        Ok(handle)
    }

    /// Explicitly cancels a query before its TTL (§2: results "continue
    /// to arrive for any query until it times out or is explicitly
    /// canceled"). A cancel notice is broadcast over the dissemination
    /// tree (charged as one dissemination round) so endsystems stop
    /// executing; all protocol state for the query is dropped.
    pub fn cancel_query(&mut self, eng: &mut SeaweedEngine, h: QueryHandle) {
        let Some(slot) = self.live_slot(h) else {
            return; // stale handle: the query is long gone
        };
        if !self.queries[slot as usize].active {
            return;
        }
        // The cancel notice costs one dissemination pass: O(N) small
        // messages. We charge it against the origin's subtree fan-out
        // without re-running the range machinery (the notice carries no
        // per-range state to aggregate back).
        let origin = self.queries[slot as usize].origin;
        if eng.is_up(origin) {
            let n_live = eng.num_up() as u64;
            let notice = u64::from(crate::wire::SEAWEED_HEADER + 16);
            self.stats.dissem_bytes += notice * n_live;
            eng.record_probe(origin, (notice * n_live.min(1 << 16)) as u32);
        }
        self.expire_query(eng, slot);
    }

    /// Runs the event loop until `horizon`.
    pub fn run_until(&mut self, eng: &mut SeaweedEngine, horizon: Time) {
        while let Some((_, ev)) = eng.next_event_before(horizon) {
            self.dispatch(eng, ev);
        }
    }

    /// Handles one engine event (exposed for custom experiment loops that
    /// interleave injections with event processing).
    pub fn dispatch(&mut self, eng: &mut SeaweedEngine, ev: Event<OverlayMsg<SeaweedMsg>>) {
        let initial: Vec<OverlayEvent<SeaweedMsg>> = match ev {
            Event::Message { from, to, payload } => {
                // `into_owned` only clones while other in-flight copies
                // still share the allocation (multicast fan-out or fault
                // duplication); the last copy out is a free move.
                self.overlay.on_message(eng, from, to, payload.into_owned())
            }
            Event::Timer { node, tag } if is_overlay_tag(tag) => {
                self.overlay.on_timer(eng, node, tag)
            }
            Event::Timer { node, tag } => {
                self.on_app_timer(eng, node, tag);
                Vec::new()
            }
            Event::NodeUp { node } => {
                self.on_node_up(eng, node);
                self.overlay.node_up(eng, node)
            }
            Event::NodeDown { node } => {
                self.overlay.node_down(eng, node);
                self.on_node_down(eng, node);
                Vec::new()
            }
            Event::NodeCrash { node } => {
                self.overlay.node_down(eng, node);
                self.on_node_crash(eng, node);
                Vec::new()
            }
            Event::PartitionStart { partition } => {
                let members = eng.partition_members(partition);
                self.overlay.partition_started(eng, &members);
                Vec::new()
            }
            Event::PartitionEnd { partition } => {
                let members = eng.partition_members(partition);
                self.overlay.partition_healed(eng, &members);
                self.on_partition_healed(eng);
                Vec::new()
            }
        };
        // Overlay events can cascade (e.g. routing that delivers locally),
        // so drain a queue rather than recursing.
        let mut queue: VecDeque<OverlayEvent<SeaweedMsg>> = initial.into();
        while let Some(oe) = queue.pop_front() {
            let more = self.on_overlay_event(eng, oe);
            queue.extend(more);
        }
    }

    fn on_overlay_event(
        &mut self,
        eng: &mut SeaweedEngine,
        ev: OverlayEvent<SeaweedMsg>,
    ) -> Vec<OverlayEvent<SeaweedMsg>> {
        match ev {
            OverlayEvent::Joined { node } => self.on_joined(eng, node),
            OverlayEvent::NeighborJoined { node, joined } => {
                self.on_neighbor_joined(eng, node, joined);
                Vec::new()
            }
            OverlayEvent::NeighborFailed { node, failed } => {
                self.on_neighbor_failed(eng, node, failed);
                Vec::new()
            }
            OverlayEvent::AppMessage {
                node,
                from,
                payload,
            } => self.on_seaweed_msg(eng, from, node, payload),
            OverlayEvent::Deliver {
                node,
                key,
                origin,
                payload,
                ..
            } => self.on_routed_delivery(eng, origin, node, key, payload),
        }
    }

    /// Generation-checks every query handle embedded in an inbound
    /// message, rewriting it to the bare slot for the internal handlers.
    /// A handle whose slot was recycled (storm mode) is late traffic for
    /// a dead query: the message is dropped — `None` — before any state
    /// is touched, and `stale_handle_drops` counts it. `QueryListPush`
    /// drops stale entries individually rather than the whole list.
    fn validate_msg(&mut self, msg: SeaweedMsg) -> Option<SeaweedMsg> {
        use SeaweedMsg as M;
        Some(match msg {
            M::MetaPush { .. } | M::QueryListPull => msg,
            M::QueryListPush { queries } => {
                let live: Vec<QueryHandle> = queries
                    .into_iter()
                    .filter_map(|q| self.check_handle(q))
                    .collect();
                M::QueryListPush { queries: live }
            }
            M::Disseminate {
                query,
                range,
                parent,
            } => M::Disseminate {
                query: self.check_handle(query)?,
                range,
                parent,
            },
            M::PredictorReport {
                query,
                range,
                predictor,
            } => M::PredictorReport {
                query: self.check_handle(query)?,
                range,
                predictor,
            },
            M::PredictorToOrigin { query, predictor } => M::PredictorToOrigin {
                query: self.check_handle(query)?,
                predictor,
            },
            M::ViewReport {
                query,
                range,
                agg,
                endsystems,
            } => M::ViewReport {
                query: self.check_handle(query)?,
                range,
                agg,
                endsystems,
            },
            M::ViewToOrigin {
                query,
                agg,
                endsystems,
            } => M::ViewToOrigin {
                query: self.check_handle(query)?,
                agg,
                endsystems,
            },
            M::ResultSubmit {
                query,
                vertex,
                child,
                version,
                agg,
            } => M::ResultSubmit {
                query: self.check_handle(query)?,
                vertex,
                child,
                version,
                agg,
            },
            M::ResultAck {
                query,
                vertex,
                child,
                version,
            } => M::ResultAck {
                query: self.check_handle(query)?,
                vertex,
                child,
                version,
            },
            M::VertexReplicate { query, vertex } => M::VertexReplicate {
                query: self.check_handle(query)?,
                vertex,
            },
            M::ResultToOrigin {
                query,
                agg,
                version,
            } => M::ResultToOrigin {
                query: self.check_handle(query)?,
                agg,
                version,
            },
        })
    }

    fn on_seaweed_msg(
        &mut self,
        eng: &mut SeaweedEngine,
        from: NodeIdx,
        to: NodeIdx,
        msg: SeaweedMsg,
    ) -> Vec<OverlayEvent<SeaweedMsg>> {
        let Some(msg) = self.validate_msg(msg) else {
            return Vec::new();
        };
        match msg {
            SeaweedMsg::MetaPush { owner } => {
                self.on_meta_push(to, owner);
                Vec::new()
            }
            SeaweedMsg::PredictorReport {
                query,
                range,
                predictor,
            } => self.on_range_report(
                eng,
                to,
                from,
                query,
                range,
                RangeResult::Predictor(predictor),
            ),
            SeaweedMsg::PredictorToOrigin { query, predictor } => {
                self.on_predictor_at_origin(eng, to, query, *predictor);
                Vec::new()
            }
            SeaweedMsg::ViewReport {
                query,
                range,
                agg,
                endsystems,
            } => self.on_range_report(
                eng,
                to,
                from,
                query,
                range,
                RangeResult::View(agg, endsystems),
            ),
            SeaweedMsg::ViewToOrigin {
                query,
                agg,
                endsystems,
            } => {
                self.on_view_at_origin(eng, to, query, agg, endsystems);
                Vec::new()
            }
            SeaweedMsg::ResultAck {
                query,
                vertex,
                child,
                version,
            } => {
                self.on_result_ack(to, query, vertex, child, version);
                Vec::new()
            }
            SeaweedMsg::VertexReplicate { query, vertex } => {
                self.on_vertex_replicate(to, query, vertex);
                Vec::new()
            }
            SeaweedMsg::ResultToOrigin {
                query,
                agg,
                version,
            } => {
                self.on_result_at_origin(eng, to, query, agg, version);
                Vec::new()
            }
            SeaweedMsg::QueryListPull => {
                self.on_query_list_pull(eng, from, to);
                Vec::new()
            }
            SeaweedMsg::QueryListPush { queries } => {
                self.on_query_list_push(eng, to, &queries);
                Vec::new()
            }
            // These two arrive via routing, not direct sends.
            SeaweedMsg::Disseminate {
                query,
                range,
                parent,
            } => self.handle_disseminate(eng, to, query, range, parent),
            SeaweedMsg::ResultSubmit {
                query,
                vertex,
                child,
                version,
                agg,
            } => self.on_result_submit(eng, from, to, query, vertex, child, version, agg),
        }
    }

    fn on_routed_delivery(
        &mut self,
        eng: &mut SeaweedEngine,
        route_origin: NodeIdx,
        node: NodeIdx,
        _key: Id,
        msg: SeaweedMsg,
    ) -> Vec<OverlayEvent<SeaweedMsg>> {
        let Some(msg) = self.validate_msg(msg) else {
            return Vec::new();
        };
        match msg {
            SeaweedMsg::Disseminate {
                query,
                range,
                parent,
            } => self.handle_disseminate(eng, node, query, range, parent),
            SeaweedMsg::ResultSubmit {
                query,
                vertex,
                child,
                version,
                agg,
            } => self.on_result_submit(eng, route_origin, node, query, vertex, child, version, agg),
            other => {
                debug_assert!(false, "unexpected routed message: {other:?}");
                Vec::new()
            }
        }
    }

    /// Whether any tail-tolerance feature is on (hedging or non-baseline
    /// replica selection). Gates every behavioural divergence from the
    /// pre-hedging protocol — with this false, the byte-identical
    /// equivalence pins hold.
    pub(crate) fn tail_tolerance_active(&self) -> bool {
        self.cfg.hedge.is_some() || self.overlay.config().selection != SelectionKind::IdOrder
    }

    // ---------------------------------------------------------- timers

    pub(crate) fn set_app_timer(
        &mut self,
        eng: &mut SeaweedEngine,
        node: NodeIdx,
        delay: Duration,
        action: TimerAction,
    ) -> AppTimer {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        debug_assert!(seq < (1 << 62), "timer tag space exhausted");
        self.timers.insert(seq, action);
        let handle = eng.set_timer(node, delay, seq);
        AppTimer { seq, handle }
    }

    /// Disarms an application timer: the engine timer is cancelled and
    /// the deferred action dropped. Idempotent — a timer that already
    /// fired or was auto-cancelled by node-down is a no-op. Only hedged
    /// mode calls this (the baseline lets no-op timers fire so its event
    /// stream is untouched).
    pub(crate) fn cancel_app_timer(&mut self, eng: &mut SeaweedEngine, t: AppTimer) {
        self.timers.remove(&t.seq);
        let _ = eng.cancel_timer(t.handle);
    }

    /// Arms a timer that must survive `node` going down (e.g. query
    /// expiry, which is wall-clock TTL, not tied to the origin's
    /// session).
    pub(crate) fn set_detached_app_timer(
        &mut self,
        eng: &mut SeaweedEngine,
        node: NodeIdx,
        delay: Duration,
        action: TimerAction,
    ) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        debug_assert!(seq < (1 << 62), "timer tag space exhausted");
        self.timers.insert(seq, action);
        let _ = eng.set_detached_timer(node, delay, seq);
    }

    /// Arms a scan-scheduler quantum timer (storm mode): liveness-tied
    /// like a plain app timer, but metered under the engine's quantum
    /// timer class so storm runs account for scheduler overhead
    /// separately from protocol timers.
    pub(crate) fn set_quantum_app_timer(
        &mut self,
        eng: &mut SeaweedEngine,
        node: NodeIdx,
        delay: Duration,
        action: TimerAction,
    ) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        debug_assert!(seq < (1 << 62), "timer tag space exhausted");
        self.timers.insert(seq, action);
        let _ = eng.set_quantum_timer(node, delay, seq);
    }

    fn on_app_timer(&mut self, eng: &mut SeaweedEngine, node: NodeIdx, tag: u64) {
        let Some(action) = self.timers.remove(&tag) else {
            return; // cancelled or superseded
        };
        match action {
            TimerAction::MetaPush { node: n } => {
                debug_assert_eq!(n, node);
                self.on_meta_push_timer(eng, n);
            }
            TimerAction::DissemTimeout { node: n, task } => {
                self.on_dissem_timeout(eng, n, task);
            }
            TimerAction::HedgeTimeout { node: n, task } => {
                self.on_hedge_timeout(eng, n, task);
            }
            TimerAction::QueryKick { node: n, query } => {
                self.on_query_kick(eng, n, query);
            }
            TimerAction::ExecuteLocal { node: n, query } => {
                self.execute_and_submit(eng, n, query);
            }
            TimerAction::ResultRetry {
                node: n,
                query,
                child,
                version,
            } => {
                self.on_result_retry(eng, n, query, child, version);
            }
            TimerAction::QueryExpire { query } => {
                self.expire_query(eng, query);
            }
            TimerAction::ScanQuantum { node: n } => {
                debug_assert_eq!(n, node);
                self.on_scan_quantum(eng, n);
            }
        }
    }

    /// Tears down a query's protocol state. `query` is a slot index;
    /// idempotent (retire followed by the TTL expiry timer is a no-op).
    /// Under storm mode the slot is then released for recycling.
    fn expire_query(&mut self, eng: &mut SeaweedEngine, query: QueryHandle) {
        let q = &mut self.queries[query as usize];
        if !q.active {
            return;
        }
        q.active = false;
        // Only ever Some when tail tolerance armed it, so the cancel is
        // baseline-invisible.
        if let Some(t) = q.kick_timer.take() {
            self.cancel_app_timer(eng, t);
        }
        // Hedged mode disarms every timer still tied to the query's
        // tasks before dropping them (invariant: no armed dissemination
        // timer may reference a dead query). The baseline lets them fire
        // as no-ops, as it always did.
        if self.cfg.hedge.is_some() {
            let keys: Vec<TaskKey> = self.tasks.keys().filter(|k| k.1 == query).collect();
            let mut stale: Vec<AppTimer> = Vec::new();
            for key in keys {
                if let Some(task) = self.tasks.get_mut(&key) {
                    stale.extend(task.timeout_timer.take());
                    stale.extend(task.hedge_timer.take());
                }
            }
            for t in stale {
                self.cancel_app_timer(eng, t);
            }
        }
        // Drop protocol state lazily held for this query.
        self.tasks.clear_query(query);
        self.vertices.clear_query(query);
        for nv in &mut self.node_vertices {
            nv.retain(|&(qh, _)| qh != query);
        }
        self.pending_submits.clear_query(query);
        self.cont_epoch.clear_query(query);
        self.leaf_targets.clear_query(query);
        self.gave_up.retain(|&(_, qh, _)| qh != query);
        // Storm mode recycles the slot (generation bump + global state
        // purge + queue admission). The baseline never releases, so its
        // handles stay unique for the life of the run.
        if self.cfg.storm.is_some() {
            self.release_slot(eng, query);
        }
    }

    // ------------------------------------------------- lifecycle hooks

    fn on_node_up(&mut self, eng: &mut SeaweedEngine, n: NodeIdx) {
        // Update the local availability model with the completed down
        // spell (the endsystem persists the model across sessions).
        if let Some(down_at) = self.down_since[n.idx()].take() {
            let span = eng.now().saturating_since(down_at);
            self.models[n.idx()].observe_up(span, eng.now());
        }
        // If the node crashed with amnesia and nobody detected it before
        // it came back, the repair stashes are stale: the copies are gone
        // for good and only the owners' periodic pushes restore them.
        self.amnesia_meta[n.idx()].clear();
        self.amnesia_vertices[n.idx()].clear();
    }

    fn on_node_down(&mut self, _eng: &mut SeaweedEngine, n: NodeIdx) {
        self.down_since[n.idx()] = Some(_eng.now());
        // Local volatile query state dies with the node; parents reissue.
        self.tasks.clear_node(n.0);
        self.pending_submits.clear_node(n.0);
        // The engine auto-cancelled this node's timers; drop the matching
        // deferred actions (query expiry is detached and survives).
        self.timers.retain(|_, a| a.node() != Some(n));
        // Un-acked local executions may be rescheduled on rejoin.
        self.exec_pending[n.idx()] = 0;
        // Queued scan work dies with the node's volatile state too; the
        // pump timer was auto-cancelled above.
        let sn = &mut self.scan[n.idx()];
        sn.tasks.clear();
        sn.pump = false;
        // Vertex replicas this node held are repaired when some neighbor
        // detects the failure (on_neighbor_failed); metadata it held
        // likewise. Nothing to do eagerly — that is the window of
        // vulnerability the paper describes.
    }

    /// Crash-with-amnesia: everything a clean shutdown loses, plus the
    /// node's *soft* state — query knowledge, submission/ack memory,
    /// continuous-query epochs, held metadata copies and vertex replicas
    /// — is wiped immediately. Only state the paper says is persisted
    /// survives: the availability model and the per-query leaf vertexId
    /// (`leaf_targets`, §3.4). Exactly-once is preserved anyway because
    /// a rejoining amnesiac resubmits into the *same* persisted child
    /// slot with a version the vertex's versioned child map dedups.
    fn on_node_crash(&mut self, eng: &mut SeaweedEngine, n: NodeIdx) {
        self.on_node_down(eng, n);
        self.stats.amnesia_crashes += 1;
        self.knows_query[n.idx()] = 0;
        self.submitted[n.idx()] = 0;
        self.cont_epoch.clear_node(n.0);
        // Metadata copies held for other owners are gone *now*: prune the
        // holder lists so nobody counts them, but stash the owner list so
        // first-detection repair can still re-replicate from survivors.
        let held: Vec<NodeIdx> = std::mem::take(&mut self.held_by[n.idx()]);
        for &owner in &held {
            self.holders[owner.idx()].retain(|&h| h != n);
        }
        self.amnesia_meta[n.idx()] = held;
        // Vertex replicas likewise; a group whose last holder just lost
        // its memory is lost immediately (the paper's low-probability
        // window), not at detection time.
        let vheld = std::mem::take(&mut self.node_vertices[n.idx()]);
        let mut stash = Vec::new();
        for (h, vertex) in vheld {
            let Some(state) = self.vertices.get_mut(&(h, vertex)) else {
                continue;
            };
            state.holders.retain(|&x| x != n);
            if state.holders.is_empty() {
                if !state.children.is_empty() {
                    self.stats.vertex_states_lost += 1;
                }
                self.vertices.remove(&(h, vertex));
            } else {
                stash.push((h, vertex));
            }
        }
        self.amnesia_vertices[n.idx()] = stash;
    }

    /// A partition healed: the boundary may have swallowed root-vertex
    /// pushes to origins on the far side, and ResultToOrigin is the one
    /// unretried message in the protocol. Re-push every active query's
    /// current root aggregate so origins converge without waiting for
    /// the next child-driven propagation. (Sorted for determinism; the
    /// origin's version guard dedups anything it already saw.)
    fn on_partition_healed(&mut self, eng: &mut SeaweedEngine) {
        let b = self.overlay.config().b;
        let mut pushes: Vec<(QueryHandle, u128, NodeIdx)> = Vec::new();
        for ((h, vertex), state) in self.vertices.iter() {
            let q = &self.queries[h as usize];
            if !q.active || state.children.is_empty() {
                continue;
            }
            if crate::vertex::parent_vertex(q.id, vertex, b).is_some() {
                continue; // interior vertex: child retries cover it
            }
            let Some(&primary) = state.holders.iter().find(|&&x| eng.is_up(x)) else {
                continue;
            };
            pushes.push((h, vertex.0, primary));
        }
        pushes.sort_unstable_by_key(|&(h, v, _)| (h, v));
        for (h, vertex, primary) in pushes {
            let Some(state) = self.vertices.get(&(h, Id(vertex))) else {
                // Collected from `vertices` a moment ago with nothing
                // mutating in between; if the entry is somehow gone,
                // skip the push rather than panic mid-heal.
                self.stats.internal_drops += 1;
                continue;
            };
            let merged = state.cached.unwrap_or_else(|| {
                let mut m = Aggregate::empty(self.queries[h as usize].bound.agg);
                for (_, a) in state.children.values() {
                    m.merge(a);
                }
                m
            });
            let version = state.out_version;
            let origin = self.queries[h as usize].origin;
            if origin == primary {
                self.on_result_at_origin(eng, origin, h, merged, version);
            } else if eng.is_up(origin) && eng.reachable(primary, origin) {
                self.stats.results_at_origin += 1;
                let wire = self.live_handle(h);
                self.overlay.send_app(
                    eng,
                    primary,
                    origin,
                    SeaweedMsg::ResultToOrigin {
                        query: wire,
                        agg: merged,
                        version,
                    },
                    crate::wire::RESULT_SUBMIT,
                    seaweed_sim::TrafficClass::Query,
                );
            }
        }

        // Re-cover dissemination ranges that were given up while the cut
        // was open: the recording node (or the origin, if it has since
        // died) re-issues each range. Where the recorder still holds the
        // task, its given-up slot is re-opened first, so the resend rides
        // the normal timeout/reissue machinery instead of being one more
        // unprotected message (give-ups exist precisely because those
        // die). The origin additionally re-kicks the full broadcast for
        // any active query in case the initial route to the query root
        // itself was swallowed by the partition (`start_dissemination`
        // sends one unretried message).
        let gave_up = std::mem::take(&mut self.gave_up);
        let mut rearm: Vec<TaskKey> = Vec::new();
        for (n, h, range) in gave_up {
            if !self.queries[h as usize].active {
                continue;
            }
            let issuer = if eng.is_up(n) {
                n
            } else {
                self.queries[h as usize].origin
            };
            if !eng.is_up(issuer) {
                self.gave_up.push((n, h, range)); // retry at the next heal
                continue;
            }
            if issuer == n {
                // Ascending key order under both layouts; the first
                // candidate is picked, so the order is protocol-visible.
                let candidates: Vec<TaskKey> = self
                    .tasks
                    .candidate_keys(n.0, h, |task| task.slots.iter().any(|s| s.range == range));
                if let Some(key) = candidates.first().copied() {
                    // `candidate_keys` just returned this key with a slot
                    // matching the range and nothing mutates in between;
                    // if either lookup misses anyway, skip the re-open
                    // (counted) — the resend below still covers the range.
                    match self.tasks.get_mut(&key) {
                        Some(task) => {
                            if let Some(slot) = task.slots.iter_mut().find(|s| s.range == range) {
                                slot.done = None;
                                slot.reissues = 0;
                                slot.sent_at = eng.now();
                                slot.hedge = None;
                                task.reported = false;
                                // Slot re-opened: memoized merge is stale.
                                task.cached = None;
                                if !rearm.contains(&key) {
                                    rearm.push(key);
                                }
                            } else {
                                self.stats.internal_drops += 1;
                            }
                        }
                        None => self.stats.internal_drops += 1,
                    }
                }
            }
            let size = crate::wire::disseminate(self.queries[h as usize].text.len());
            self.stats.disseminate_msgs += 1;
            self.stats.dissem_bytes += u64::from(size);
            self.timelines[h as usize].dissem_msgs += 1;
            let wire = self.live_handle(h);
            let evs = self.overlay.route(
                eng,
                issuer,
                range.midpoint(),
                SeaweedMsg::Disseminate {
                    query: wire,
                    range,
                    parent: issuer,
                },
                size,
                seaweed_sim::TrafficClass::Query,
            );
            self.cascade(eng, evs);
        }
        for key in rearm {
            let n = NodeIdx(key.0);
            let hedging = self.cfg.hedge.is_some();
            if hedging {
                // The task may still hold armed timers from before the
                // heal (e.g. other slots mid-reissue); disarm them so
                // hedged mode keeps exactly one of each per task.
                let stale: Vec<AppTimer> = self.tasks.get_mut(&key).map_or_else(Vec::new, |t| {
                    t.timeout_timer
                        .take()
                        .into_iter()
                        .chain(t.hedge_timer.take())
                        .collect()
                });
                for t in stale {
                    self.cancel_app_timer(eng, t);
                }
            }
            // Armed unconditionally, exactly as before hedging existed:
            // the re-cover cascade above may have already completed the
            // task, in which case the baseline lets the timer fire as a
            // no-op while hedged mode disarms it right away.
            // lint:allow(D008): non-hedging baseline deliberately lets a completed task's timer fire as a no-op, preserving the pre-hedging event stream bit-for-bit
            let timeout = self.set_app_timer(
                eng,
                n,
                self.cfg.dissem_timeout,
                TimerAction::DissemTimeout { node: n, task: key },
            );
            // lint:allow(D008): armed only when hedging, and hedged mode disarms in the match below; the leaked path (hedging false) arms nothing
            let hedge = hedging.then(|| {
                let delay = self.hedge_delay(n);
                self.set_app_timer(
                    eng,
                    n,
                    delay,
                    TimerAction::HedgeTimeout { node: n, task: key },
                )
            });
            match self.tasks.get_mut(&key) {
                Some(task) if !task.reported => {
                    task.timeout_timer = Some(timeout);
                    task.hedge_timer = hedge;
                }
                _ => {
                    if hedging {
                        self.cancel_app_timer(eng, timeout);
                        if let Some(t) = hedge {
                            self.cancel_app_timer(eng, t);
                        }
                    }
                }
            }
        }
        for h in 0..self.queries.len() as QueryHandle {
            let q = &self.queries[h as usize];
            if q.active && eng.is_up(q.origin) && self.overlay.is_joined(q.origin) {
                let origin = q.origin;
                self.start_dissemination(eng, origin, h);
            }
        }
    }

    fn on_joined(&mut self, eng: &mut SeaweedEngine, n: NodeIdx) -> Vec<OverlayEvent<SeaweedMsg>> {
        // (Re)start metadata pushes: one immediately, then randomized.
        self.push_metadata(eng, n);
        self.schedule_meta_push(eng, n);
        // Learn about active queries from a neighbor.
        let has_active = self.queries.iter().any(|q| q.active);
        if has_active {
            if let Some(&peer) = self.overlay.replica_set(n, 1).first() {
                self.overlay.send_app(
                    eng,
                    n,
                    peer,
                    SeaweedMsg::QueryListPull,
                    crate::wire::SEAWEED_HEADER,
                    seaweed_sim::TrafficClass::Query,
                );
            }
        }
        Vec::new()
    }

    fn on_query_list_pull(&mut self, eng: &mut SeaweedEngine, from: NodeIdx, at: NodeIdx) {
        let active: Vec<QueryHandle> = self
            .queries
            .iter()
            .enumerate()
            .filter(|(h, q)| q.active && self.knows_query[at.idx()] & (1 << h) != 0)
            .map(|(h, _)| h as QueryHandle)
            .collect();
        if active.is_empty() {
            return;
        }
        let text: usize = active
            .iter()
            .map(|&h| self.queries[h as usize].text.len())
            .sum();
        let size = crate::wire::query_list(text, active.len());
        let wire: Vec<QueryHandle> = active.iter().map(|&h| self.live_handle(h)).collect();
        self.overlay.send_app(
            eng,
            at,
            from,
            SeaweedMsg::QueryListPush { queries: wire },
            size,
            seaweed_sim::TrafficClass::Query,
        );
    }

    fn on_query_list_push(
        &mut self,
        eng: &mut SeaweedEngine,
        at: NodeIdx,
        queries: &[QueryHandle],
    ) {
        for &h in queries {
            self.learn_query(eng, at, h);
        }
    }

    /// Marks `at` as knowing query `h` and schedules local execution if
    /// it has not yet contributed.
    pub(crate) fn learn_query(&mut self, eng: &mut SeaweedEngine, at: NodeIdx, h: QueryHandle) {
        let bit = 1u64 << h;
        self.knows_query[at.idx()] |= bit;
        if !self.queries[h as usize].active {
            return;
        }
        if matches!(self.queries[h as usize].kind, QueryKind::View { .. }) {
            // View queries have no local execution phase: they are
            // answered during dissemination from replicated values.
            return;
        }
        if self.submitted[at.idx()] & bit != 0 || self.exec_pending[at.idx()] & bit != 0 {
            return;
        }
        self.exec_pending[at.idx()] |= bit;
        let jitter = Duration::from_micros(
            self.rng
                .gen_range(0..=self.cfg.local_exec_delay.as_micros()),
        );
        self.set_app_timer(
            eng,
            at,
            self.cfg.local_exec_delay + jitter,
            TimerAction::ExecuteLocal { node: at, query: h },
        );
    }
}
