//! Result aggregation (paper §3.4).
//!
//! Each available endsystem executes the query exactly and submits its
//! partial aggregate into the query's aggregation tree. The tree is
//! built from the leaves upward: an endsystem iterates the vertex parent
//! function `V` from its own id until it leaves its own region of
//! responsibility, and submits there. Interior vertices are replica
//! groups (primary + m−1 backups); a primary stores per-child versioned
//! partial aggregates (exactly-once), replicates to its backups before
//! acknowledging, and propagates its merged aggregate to its parent
//! vertex. The root vertex's key is the queryId; its primary pushes the
//! merged result to the query origin as it improves.

use seaweed_overlay::OverlayEvent;
use seaweed_sim::{NodeIdx, TrafficClass};
use seaweed_store::Aggregate;
use seaweed_types::Id;

use super::{
    PendingSubmit, QueryHandle, Seaweed, SeaweedEngine, SeaweedMsg, TimerAction, VertexState,
};
use crate::provider::DataProvider;
use crate::vertex::parent_vertex;
use crate::wire;

impl<P: DataProvider> Seaweed<P> {
    /// Local execution finished (modelled by the exec-delay timer):
    /// submit the partial aggregate into the aggregation tree. For
    /// continuous queries this also schedules the next epoch.
    pub(crate) fn execute_and_submit(
        &mut self,
        eng: &mut SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
    ) {
        let bit = 1u64 << h;
        if !eng.is_up(n) || !self.overlay.is_joined(n) {
            self.exec_pending[n.idx()] &= !bit;
            return; // went down meanwhile; will resubmit on rejoin
        }
        if !self.queries[h as usize].active {
            self.exec_pending[n.idx()] &= !bit;
            return;
        }
        match self.queries[h as usize].kind {
            super::QueryKind::OneShot => {
                if self.submitted[n.idx()] & bit != 0 {
                    self.exec_pending[n.idx()] &= !bit;
                    return;
                }
                // Storm mode: a contended endsystem (another query's
                // execution pending here, or a scan queue draining)
                // defers to the fair quantum scheduler; the pending bit
                // stays set until the queued scan completes. Uncontended
                // executions — always the case with a single query —
                // take the baseline path below untouched.
                if self.scan_contended(n, h) {
                    self.enqueue_scan(eng, n, h);
                    return;
                }
                self.exec_pending[n.idx()] &= !bit;
                let agg = match self
                    .provider
                    .execute(n.idx(), &self.queries[h as usize].bound)
                {
                    Ok(agg) => agg,
                    Err(_) => {
                        // Dropped contribution; surfaces as incompleteness
                        // at the origin rather than crashing the run.
                        self.stats.exec_failures += 1;
                        return;
                    }
                };
                self.submit_local_result(eng, n, h, agg);
            }
            super::QueryKind::Continuous { interval } => {
                self.execute_continuous_epoch(eng, n, h, interval);
            }
            super::QueryKind::View { .. } => {
                // View queries are answered during dissemination from
                // replicated values; there is no execution phase.
                self.exec_pending[n.idx()] &= !bit;
            }
        }
    }

    /// Submits a finished local one-shot execution into the aggregation
    /// tree: the shared tail of the inline path and the storm
    /// scheduler's batched completions.
    pub(crate) fn submit_local_result(
        &mut self,
        eng: &mut SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
        agg: Aggregate,
    ) {
        let my_id = self.overlay.id_of(n);
        let target = self.leaf_vertex(n, h);
        self.stats.result_submissions += 1;
        self.timelines[h as usize].submissions += 1;
        self.submit_to_vertex(eng, n, h, target, my_id, 1, agg);
    }

    /// One epoch of a continuous query at one endsystem: re-bind `NOW()`
    /// to the current instant, execute, submit with the epoch as the
    /// version (so the aggregation tree's per-child versioning replaces
    /// the previous epoch exactly once), and arm the next epoch's timer.
    /// The exec-pending bit stays set while the query is active so the
    /// active-query list cannot double-schedule the loop.
    fn execute_continuous_epoch(
        &mut self,
        eng: &mut SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
        interval: seaweed_types::Duration,
    ) {
        let q = &self.queries[h as usize];
        let epoch = eng.now().saturating_since(q.injected).as_micros() / interval.as_micros();
        let already = self.cont_epoch.get(n.0, h);
        if already != Some(epoch) {
            let now_secs = (eng.now().as_micros() / 1_000_000) as i64;
            // The text parsed and bound at injection; a re-bind only
            // varies NOW(), so failure here is an internal inconsistency
            // — skip the epoch (counted) instead of panicking, and let
            // the next epoch retry with a fresh binding.
            let rebound =
                seaweed_store::Query::parse(&q.text).and_then(|p| p.bind(&q.schema, now_secs));
            let bound = match rebound {
                Ok(b) => b,
                Err(_) => {
                    self.stats.internal_drops += 1;
                    self.arm_next_epoch(eng, n, h, epoch, interval);
                    return;
                }
            };
            match self.provider.execute(n.idx(), &bound) {
                Ok(agg) => {
                    self.cont_epoch.insert(n.0, h, epoch);
                    let my_id = self.overlay.id_of(n);
                    let target = self.leaf_vertex(n, h);
                    self.stats.result_submissions += 1;
                    self.timelines[h as usize].submissions += 1;
                    // Version = epoch + 2 keeps continuous versions above
                    // the initial one-shot-style version space.
                    self.submit_to_vertex(eng, n, h, target, my_id, epoch + 2, agg);
                }
                // This epoch's contribution is lost; the next epoch's
                // timer below retries with a fresh binding.
                Err(_) => self.stats.exec_failures += 1,
            }
        }
        self.arm_next_epoch(eng, n, h, epoch, interval);
    }

    /// Arms the next continuous-query epoch (with the configured jitter
    /// so epochs do not synchronize network-wide). One RNG draw per
    /// call, exactly as when this tail lived inline.
    fn arm_next_epoch(
        &mut self,
        eng: &mut SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
        epoch: u64,
        interval: seaweed_types::Duration,
    ) {
        let q = &self.queries[h as usize];
        let next_at =
            q.injected + seaweed_types::Duration::from_micros((epoch + 1) * interval.as_micros());
        let jitter = seaweed_types::Duration::from_micros(rand::Rng::gen_range(
            &mut self.rng,
            0..=self.cfg.local_exec_delay.as_micros(),
        ));
        let delay = next_at.saturating_since(eng.now()) + self.cfg.local_exec_delay + jitter;
        self.set_app_timer(
            eng,
            n,
            delay,
            TimerAction::ExecuteLocal { node: n, query: h },
        );
    }

    /// The paper's leaf optimization: iterate V from the endsystem's own
    /// id until the vertex leaves this endsystem's region, and submit
    /// there (skipping the tree levels whose vertices we would own
    /// ourselves). The chosen vertex is **persisted** per (endsystem,
    /// query) — §3.4: "It then persists that vertexId with the query" —
    /// so resubmissions after churn update the same child slot rather
    /// than forking a second tree path.
    pub(crate) fn leaf_vertex(&mut self, n: NodeIdx, h: QueryHandle) -> Id {
        if let Some(v) = self.leaf_targets.get(n.0, h) {
            return v;
        }
        let qid = self.queries[h as usize].id;
        let b = self.overlay.config().b;
        let region = self.overlay.responsible_range(n);
        let mut v = self.overlay.id_of(n);
        let target = loop {
            match parent_vertex(qid, v, b) {
                None => break v, // reached the root key itself
                Some(p) if region.contains(p) => v = p,
                Some(p) => break p,
            }
        };
        self.leaf_targets.insert(n.0, h, target);
        target
    }

    /// Routes a (re)submission toward a vertex and arms the retry timer.
    #[allow(clippy::too_many_arguments)]
    fn submit_to_vertex(
        &mut self,
        eng: &mut SeaweedEngine,
        from: NodeIdx,
        h: QueryHandle,
        vertex: Id,
        child: Id,
        version: u64,
        agg: Aggregate,
    ) {
        self.pending_submits.insert(
            (from.0, h, child.0),
            PendingSubmit {
                target_vertex: vertex,
                version,
                agg,
                attempts: 0,
            },
        );
        let wire_h = self.live_handle(h);
        let evs = self.overlay.route(
            eng,
            from,
            vertex,
            SeaweedMsg::ResultSubmit {
                query: wire_h,
                vertex,
                child,
                version,
                agg,
            },
            wire::RESULT_SUBMIT,
            TrafficClass::Query,
        );
        self.set_app_timer(
            eng,
            from,
            self.cfg.result_retry,
            TimerAction::ResultRetry {
                node: from,
                query: h,
                child,
                version,
            },
        );
        self.cascade(eng, evs);
    }

    /// Retry timer: if the submission is still unacked, re-route it and
    /// re-arm with capped exponential backoff. Fixed-interval retries
    /// hammer a dead or partitioned-away primary every `result_retry`;
    /// doubling (to `result_retry_cap`) keeps the common fast recovery
    /// while bounding retransmissions across long outages. The jitter is
    /// drawn from the protocol's seeded RNG only when a retransmission
    /// actually happens, so loss-free runs consume identical RNG
    /// sequences to the pre-backoff protocol.
    pub(crate) fn on_result_retry(
        &mut self,
        eng: &mut SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
        child: Id,
        version: u64,
    ) {
        let Some(p) = self.pending_submits.get_mut(&(n.0, h, child.0)) else {
            return; // acked
        };
        if p.version != version {
            return; // superseded by a newer submission
        }
        if !eng.is_up(n) || !self.queries[h as usize].active {
            return;
        }
        p.attempts += 1;
        let (vertex, agg, attempts) = (p.target_vertex, p.agg, p.attempts);
        self.stats.result_retries += 1;
        self.timelines[h as usize].result_retries += 1;
        let wire_h = self.live_handle(h);
        let evs = self.overlay.route(
            eng,
            n,
            vertex,
            SeaweedMsg::ResultSubmit {
                query: wire_h,
                vertex,
                child,
                version,
                agg,
            },
            wire::RESULT_SUBMIT,
            TrafficClass::Query,
        );
        let delay = self.retry_backoff(attempts);
        self.set_app_timer(
            eng,
            n,
            delay,
            TimerAction::ResultRetry {
                node: n,
                query: h,
                child,
                version,
            },
        );
        self.cascade(eng, evs);
    }

    /// Delay until retransmission `attempts + 1`; see
    /// [`backoff::retry_backoff`](super::backoff::retry_backoff). One
    /// RNG draw per call, exactly as before the extraction.
    fn retry_backoff(&mut self, attempts: u32) -> seaweed_types::Duration {
        super::backoff::retry_backoff(
            self.cfg.result_retry,
            self.cfg.result_retry_cap,
            attempts,
            &mut self.rng,
        )
    }

    /// A submission arrived at the (believed) primary for `vertex`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_result_submit(
        &mut self,
        eng: &mut SeaweedEngine,
        submitter: NodeIdx,
        at: NodeIdx,
        h: QueryHandle,
        vertex: Id,
        child: Id,
        version: u64,
        agg: Aggregate,
    ) -> Vec<OverlayEvent<SeaweedMsg>> {
        if !self.queries[h as usize].active {
            return Vec::new();
        }
        self.learn_query(eng, at, h);

        // Ensure the vertex group exists and `at` is a member (a fresh
        // primary after churn pulls state from a surviving backup —
        // charged as one replication transfer).
        self.ensure_vertex_member(eng, at, h, vertex);

        let Some(state) = self.vertices.get_mut(&(h, vertex)) else {
            // `ensure_vertex_member` just created or joined the group; a
            // miss here is an internal inconsistency — drop the
            // submission (counted) and let the retry timer re-drive it.
            self.stats.internal_drops += 1;
            return Vec::new();
        };
        // Keep the memoized children-merge exact: appending a child past
        // the current maximum key extends the fold in place (same f64
        // operation order as a recompute); replacing a child or inserting
        // mid-map invalidates it; a stale duplicate leaves both the map
        // and the cache untouched.
        let appends_at_max = state
            .children
            .last_key_value()
            .is_none_or(|(&max, _)| child > max);
        match state.children.entry(child) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert((version, agg));
                if appends_at_max {
                    if let Some(c) = &mut state.cached {
                        c.merge(&agg);
                    }
                } else {
                    state.cached = None;
                }
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                if version >= e.get().0 {
                    e.insert((version, agg));
                    state.cached = None;
                }
            }
        }
        let children_count = state.children.len();

        // Replicate to backups before acknowledging (paper ordering).
        let holders = state.holders.clone();
        let size = wire::vertex_replicate(children_count);
        let wire_h = self.live_handle(h);
        for b in holders.iter().skip(1) {
            if *b != at && eng.is_up(*b) {
                self.stats.vertex_replications += 1;
                self.overlay.send_app(
                    eng,
                    at,
                    *b,
                    SeaweedMsg::VertexReplicate {
                        query: wire_h,
                        vertex,
                    },
                    size,
                    TrafficClass::Query,
                );
            }
        }

        // Ack the submitter.
        if submitter != at {
            self.overlay.send_app(
                eng,
                at,
                submitter,
                SeaweedMsg::ResultAck {
                    query: wire_h,
                    vertex,
                    child,
                    version,
                },
                wire::RESULT_ACK,
                TrafficClass::Query,
            );
        } else {
            self.on_result_ack(at, h, vertex, child, version);
        }

        // Propagate the merged aggregate upward.
        self.propagate_up(eng, at, h, vertex);
        Vec::new()
    }

    /// Merges a vertex's children and pushes the result to its parent
    /// vertex (or the query origin at the root).
    fn propagate_up(&mut self, eng: &mut SeaweedEngine, at: NodeIdx, h: QueryHandle, vertex: Id) {
        let qid = self.queries[h as usize].id;
        let b = self.overlay.config().b;
        let empty = Aggregate::empty(self.queries[h as usize].bound.agg);
        let Some(state) = self.vertices.get_mut(&(h, vertex)) else {
            // Every caller holds the vertex when it calls; dropping the
            // propagation (counted) loses one push that the next child
            // submission regenerates.
            self.stats.internal_drops += 1;
            return;
        };
        // Reuse the memoized children-merge when the submit path kept it
        // current (the common case: one new child appended); recompute in
        // canonical ascending-key order otherwise.
        let merged = match state.cached {
            Some(m) => m,
            None => {
                let mut m = empty;
                for (_, a) in state.children.values() {
                    m.merge(a);
                }
                state.cached = Some(m);
                m
            }
        };
        state.out_version += 1;
        let version = state.out_version;

        match parent_vertex(qid, vertex, b) {
            None => {
                // This IS the root vertex: push to the origin.
                let origin = self.queries[h as usize].origin;
                self.stats.results_at_origin += 1;
                if origin == at {
                    self.on_result_at_origin(eng, at, h, merged, version);
                } else {
                    let wire_h = self.live_handle(h);
                    self.overlay.send_app(
                        eng,
                        at,
                        origin,
                        SeaweedMsg::ResultToOrigin {
                            query: wire_h,
                            agg: merged,
                            version,
                        },
                        wire::RESULT_SUBMIT,
                        TrafficClass::Query,
                    );
                }
            }
            Some(parent) => {
                if self.overlay.responsible_range(at).contains(parent) {
                    // We own the parent vertex too: fold in directly (we
                    // are its primary); its own propagation continues the
                    // climb.
                    self.merge_into_owned_vertex(eng, at, h, parent, vertex, version, merged);
                } else {
                    self.submit_to_vertex(eng, at, h, parent, vertex, version, merged);
                }
            }
        }
    }

    /// Directly folds an aggregate into a vertex this node owns (no
    /// routing round-trip for self-owned parents).
    #[allow(clippy::too_many_arguments)]
    fn merge_into_owned_vertex(
        &mut self,
        eng: &mut SeaweedEngine,
        at: NodeIdx,
        h: QueryHandle,
        vertex: Id,
        child: Id,
        version: u64,
        agg: Aggregate,
    ) {
        let evs = self.on_result_submit(eng, at, at, h, vertex, child, version, agg);
        self.cascade(eng, evs);
    }

    /// An ack reached the submitter: clear the pending retransmission and
    /// mark leaf completion.
    pub(crate) fn on_result_ack(
        &mut self,
        at: NodeIdx,
        h: QueryHandle,
        vertex: Id,
        child: Id,
        version: u64,
    ) {
        let clear = match self.pending_submits.get(&(at.0, h, child.0)) {
            Some(p) => p.target_vertex == vertex && p.version <= version,
            None => false,
        };
        if clear {
            self.pending_submits.remove(&(at.0, h, child.0));
        }
        // A one-shot leaf submission (child == our own id) is now
        // durable: never resubmit, even across availability sessions.
        // Continuous queries keep re-executing, so the bit stays clear.
        if child == self.overlay.id_of(at)
            && self.queries[h as usize].kind == super::QueryKind::OneShot
        {
            self.submitted[at.idx()] |= 1 << h;
        }
    }

    /// Backup received vertex state (contents live in the shared store;
    /// membership is what matters here).
    pub(crate) fn on_vertex_replicate(&mut self, at: NodeIdx, h: QueryHandle, vertex: Id) {
        let Some(state) = self.vertices.get_mut(&(h, vertex)) else {
            return;
        };
        if !state.holders.contains(&at) {
            state.holders.push(at);
            self.node_vertices[at.idx()].push((h, vertex));
        }
    }

    /// Makes sure a vertex group exists with `at` as a member, recruiting
    /// backups on creation.
    fn ensure_vertex_member(
        &mut self,
        eng: &mut SeaweedEngine,
        at: NodeIdx,
        h: QueryHandle,
        vertex: Id,
    ) {
        let m = self.cfg.m_vertex;
        let exists = self.vertices.contains_key(&(h, vertex));
        if !exists {
            let mut state = VertexState::default();
            state.holders.push(at);
            self.vertices.insert((h, vertex), state);
            self.node_vertices[at.idx()].push((h, vertex));
            // Recruit m-1 backups: the next-closest live nodes to the
            // vertex key (from our leafset view).
            let backups: Vec<NodeIdx> = self
                .overlay
                .replica_set(at, self.cfg.k_metadata)
                .into_iter()
                .filter(|&x| x != at)
                .take(m - 1)
                .collect();
            let wire_h = self.live_handle(h);
            for bkp in backups {
                self.stats.vertex_replications += 1;
                self.overlay.send_app(
                    eng,
                    at,
                    bkp,
                    SeaweedMsg::VertexReplicate {
                        query: wire_h,
                        vertex,
                    },
                    wire::vertex_replicate(0),
                    TrafficClass::Query,
                );
            }
        } else {
            let Some(state) = self.vertices.get_mut(&(h, vertex)) else {
                // `contains_key` held a moment ago with nothing mutating
                // in between; skip the membership update (counted)
                // rather than panic — the next submission re-ensures.
                self.stats.internal_drops += 1;
                return;
            };
            if !state.holders.contains(&at) {
                // New primary after churn: pull state from a surviving
                // member (charged as one replication-sized transfer).
                // Prefer a member we can actually reach — across a
                // partition, an up-but-unreachable survivor cannot serve
                // the pull (the transfer would be cut at the boundary).
                let src = state
                    .holders
                    .iter()
                    .copied()
                    .find(|&x| x != at && eng.is_up(x) && eng.reachable(at, x))
                    .or_else(|| {
                        state
                            .holders
                            .iter()
                            .copied()
                            .find(|&x| x != at && eng.is_up(x))
                    });
                state.holders.insert(0, at);
                let children = state.children.len();
                self.node_vertices[at.idx()].push((h, vertex));
                if let Some(src) = src {
                    self.stats.vertex_replications += 1;
                    let wire_h = self.live_handle(h);
                    self.overlay.send_app(
                        eng,
                        src,
                        at,
                        SeaweedMsg::VertexReplicate {
                            query: wire_h,
                            vertex,
                        },
                        wire::vertex_replicate(children),
                        TrafficClass::Query,
                    );
                }
            }
        }
    }

    /// Repairs every vertex group `failed` belonged to: drop it from the
    /// holder set; if members survive, one of them recruits a
    /// replacement; if none do, the state is lost (the paper's
    /// low-probability window).
    pub(crate) fn repair_vertices_of(&mut self, eng: &mut SeaweedEngine, failed: NodeIdx) {
        // A crash-with-amnesia already pruned the holder sets and stashed
        // the group list; fold the stash in so survivors still recruit
        // replacements back up to the replication factor.
        let mut held = std::mem::take(&mut self.node_vertices[failed.idx()]);
        held.extend(std::mem::take(&mut self.amnesia_vertices[failed.idx()]));
        for (h, vertex) in held {
            let Some(state) = self.vertices.get_mut(&(h, vertex)) else {
                continue;
            };
            state.holders.retain(|&x| x != failed);
            let survivors: Vec<NodeIdx> = state
                .holders
                .iter()
                .copied()
                .filter(|&x| eng.is_up(x))
                .collect();
            if survivors.is_empty() {
                if !state.children.is_empty() {
                    self.stats.vertex_states_lost += 1;
                    self.vertices.remove(&(h, vertex));
                }
                continue;
            }
            let children = state.children.len();
            if state.holders.len() < self.cfg.m_vertex {
                // Recruit a replacement near the vertex key.
                let replacement = self
                    .overlay
                    .replica_set_oracle(vertex, self.cfg.m_vertex + 2)
                    .into_iter()
                    .find(|x| {
                        !state.holders.contains(x)
                            && eng.is_up(*x)
                            && eng.reachable(survivors[0], *x)
                    });
                if let Some(r) = replacement {
                    state.holders.push(r);
                    self.node_vertices[r.idx()].push((h, vertex));
                    self.stats.vertex_replications += 1;
                    let wire_h = self.live_handle(h);
                    self.overlay.send_app(
                        eng,
                        survivors[0],
                        r,
                        SeaweedMsg::VertexReplicate {
                            query: wire_h,
                            vertex,
                        },
                        wire::vertex_replicate(children),
                        TrafficClass::Query,
                    );
                }
            }
        }
    }

    /// The merged result reached the query origin.
    pub(crate) fn on_result_at_origin(
        &mut self,
        eng: &mut SeaweedEngine,
        at: NodeIdx,
        h: QueryHandle,
        agg: Aggregate,
        version: u64,
    ) {
        let q = &mut self.queries[h as usize];
        debug_assert_eq!(q.origin, at);
        // The root vertex's out-version orders updates: late reordered
        // deliveries must not regress the result. (For one-shot queries
        // this makes the origin's row count monotone; for continuous
        // queries newer epochs may legitimately shrink it.)
        if version > q.latest_version || q.latest.is_none() {
            q.latest = Some(agg);
            q.latest_version = version;
            q.progress.push((eng.now(), agg.rows, agg.finish()));
            self.timelines[h as usize].record_result(eng.now(), agg.rows);
        }
    }
}
