#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
//! Seaweed — the delay-aware querying protocols (the paper's core
//! contribution).
//!
//! Seaweed answers one-shot relational aggregate queries over data that
//! stays on the endsystems that produced it. Its pieces, each a module
//! here:
//!
//! * **Metadata replication** (`app/metadata`): every endsystem pushes
//!   a compact data summary (column histograms, `h` bytes) and an
//!   availability model (`a` bytes) to the `k` endsystems with the
//!   closest ids. The replicas answer for it while it is down.
//! * **Query dissemination & completeness prediction**
//!   (`app/disseminate`, [`predictor`]): a query is routed to the root
//!   of its `queryId`, then broadcast by recursive namespace-range
//!   subdivision. Each live endsystem estimates its relevant rows; the
//!   endsystem responsible for a dead range estimates on behalf of the
//!   unavailable endsystems from replicated metadata and predicts their
//!   return times. Constant-size predictors aggregate back up the tree.
//! * **Result aggregation** (`app/results`, [`vertex`]): exact partial
//!   aggregates flow up a per-query tree embedded in the namespace, whose
//!   interior vertices are failure-resilient replica groups providing
//!   exactly-once counting. Results keep arriving as endsystems return —
//!   delay traded for completeness.
//!
//! The protocol layer talks to the data plane through
//! [`provider::DataProvider`] and runs over `seaweed_overlay` on
//! `seaweed_sim`.

pub mod app;
pub mod obs;
pub mod oracle;
pub mod predictor;
pub mod provider;
pub mod vertex;
pub mod wire;

pub use app::{
    HedgeConfig, QueryHandle, QueryKind, QueryState, Seaweed, SeaweedConfig, SeaweedEngine,
    SeaweedMsg, SeaweedStats, StormConfig, Submission, ViewDef, ViewHandle,
};
pub use obs::{QueryTimeline, SloReport};
pub use oracle::ChaosOracle;
pub use predictor::Predictor;
pub use provider::{DataProvider, LiveTables, Precomputed};
