//! Data-plane access for the protocol layer.
//!
//! The paper's simulations pre-computed per-endsystem query results and
//! histograms (§4.3) rather than running a DBMS inside the simulator; we
//! support both modes behind one trait:
//!
//! * [`LiveTables`] holds real [`Table`] fragments and answers arbitrary
//!   queries — examples and small simulations use this.
//! * [`Precomputed`] stores per-(endsystem, query) aggregates and row
//!   estimates for a fixed query set — large-scale experiments stream
//!   generated fragments through a summarization pass and drop them.

use std::collections::BTreeMap;

use seaweed_store::exec::{count_matching, execute};
use seaweed_store::{Aggregate, BoundQuery, DataSummary, Query, Schema, StoreError, Table};

/// Data-plane interface the Seaweed protocol layer needs from each
/// endsystem.
pub trait DataProvider {
    /// Serialized size in bytes of the endsystem's data summary — the
    /// `h` of Table 1, charged on every metadata push.
    fn summary_wire_size(&self, node: usize) -> u32;

    /// Histogram-based estimate of rows relevant to `query` on `node` —
    /// what a metadata replica computes on an unavailable endsystem's
    /// behalf, and what an available endsystem quotes for its own
    /// predictor.
    fn estimate_rows(&self, node: usize, query: &BoundQuery) -> f64;

    /// Executes `query` on `node`'s fragment, returning the exact partial
    /// aggregate. Fails if the provider cannot answer the query (e.g. a
    /// pre-computed provider asked about an unregistered query); the
    /// protocol layer treats that as a missing contribution, not a
    /// crash.
    fn execute(&self, node: usize, query: &BoundQuery) -> Result<Aggregate, StoreError>;

    /// Exact relevant-row count (ground truth for experiments).
    fn exact_rows(&self, node: usize, query: &BoundQuery) -> u64;

    /// Rows a full table pass on `node` touches — the unit the storm
    /// scheduler charges per query regardless of selectivity, since a
    /// scan reads every row to test the predicate. Providers without a
    /// physical fragment report 1 (scans are free-but-ordered).
    fn scan_cost(&self, node: usize) -> u64 {
        let _ = node;
        1
    }

    /// Executes several queries against `node`'s fragment, per-query
    /// results in input order. Providers with real tables share one row
    /// walk across all queries; the default just loops.
    fn execute_many(
        &self,
        node: usize,
        queries: &[&BoundQuery],
    ) -> Vec<Result<Aggregate, StoreError>> {
        queries.iter().map(|q| self.execute(node, q)).collect()
    }
}

/// Real tables per endsystem.
#[derive(Debug)]
pub struct LiveTables {
    schema: Schema,
    tables: Vec<Table>,
    summaries: Vec<DataSummary>,
    /// Per-endsystem summary wire sizes, refreshed alongside the
    /// summaries: [`DataProvider::summary_wire_size`] is charged on every
    /// metadata push, so it must not re-walk histograms each time.
    summary_sizes: Vec<u32>,
}

impl LiveTables {
    /// Builds from per-endsystem fragments (summaries are derived here).
    ///
    /// # Panics
    /// Panics if fragments disagree on schema.
    #[must_use]
    pub fn new(tables: Vec<Table>) -> Self {
        assert!(!tables.is_empty(), "need at least one fragment");
        let schema = tables[0].schema().clone();
        for t in &tables {
            assert_eq!(*t.schema(), schema, "fragments must share a schema");
        }
        let summaries: Vec<DataSummary> = tables.iter().map(DataSummary::build).collect();
        let summary_sizes = summaries.iter().map(DataSummary::wire_size).collect();
        LiveTables {
            schema,
            tables,
            summaries,
            summary_sizes,
        }
    }

    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    #[must_use]
    pub fn table(&self, node: usize) -> &Table {
        &self.tables[node]
    }

    /// Mutable access to one endsystem's fragment — the paper's "frequent
    /// local updates" path (updates are single-endsystem by design, §1.3).
    /// Call [`LiveTables::refresh_summary`] afterwards so the next
    /// metadata push carries current histograms.
    pub fn table_mut(&mut self, node: usize) -> &mut Table {
        &mut self.tables[node]
    }

    /// Rebuilds the endsystem's data summary from its current fragment
    /// (what a real endsystem does before each metadata push when data
    /// changed, §3.2.2).
    pub fn refresh_summary(&mut self, node: usize) {
        self.summaries[node] = DataSummary::build(&self.tables[node]);
        self.summary_sizes[node] = self.summaries[node].wire_size();
    }

    /// Parses and binds a query against this application's schema.
    pub fn bind(&self, sql: &str, now_secs: i64) -> Result<(Query, BoundQuery), StoreError> {
        let q = Query::parse(sql)?;
        let b = q.bind(&self.schema, now_secs)?;
        Ok((q, b))
    }
}

impl DataProvider for LiveTables {
    fn summary_wire_size(&self, node: usize) -> u32 {
        self.summary_sizes[node]
    }

    fn estimate_rows(&self, node: usize, query: &BoundQuery) -> f64 {
        self.summaries[node].estimate_rows(query)
    }

    fn execute(&self, node: usize, query: &BoundQuery) -> Result<Aggregate, StoreError> {
        execute(query, &self.tables[node])
    }

    fn exact_rows(&self, node: usize, query: &BoundQuery) -> u64 {
        count_matching(query, &self.tables[node])
    }

    fn scan_cost(&self, node: usize) -> u64 {
        self.tables[node].num_rows() as u64
    }

    fn execute_many(
        &self,
        node: usize,
        queries: &[&BoundQuery],
    ) -> Vec<Result<Aggregate, StoreError>> {
        seaweed_store::exec::execute_batch(queries, &self.tables[node])
    }
}

/// Pre-computed per-(endsystem, query) answers for a fixed query set,
/// keyed by the bound query's shape. Mirrors the paper's own simulator
/// optimization: "We pre-computed the results of each query as well as
/// the histograms on all endsystem data."
#[derive(Debug)]
pub struct Precomputed {
    /// Summary sizes per endsystem.
    summary_sizes: Vec<u32>,
    /// Per registered query: per-endsystem (estimate, aggregate, exact).
    answers: BTreeMap<QueryKey, Vec<(f64, Aggregate, u64)>>,
}

/// Ordered identity of a bound query (order-stable registry keys keep
/// latent iteration hazards out of the data plane).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct QueryKey(String);

fn key_of(query: &BoundQuery) -> QueryKey {
    QueryKey(format!("{query:?}"))
}

impl Precomputed {
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        Precomputed {
            summary_sizes: vec![0; num_nodes],
            answers: BTreeMap::new(),
        }
    }

    /// Registers one endsystem's answers, typically streamed from a
    /// just-generated fragment that is dropped afterwards.
    pub fn record(
        &mut self,
        node: usize,
        summary_size: u32,
        answers: impl IntoIterator<Item = (BoundQuery, f64, Aggregate, u64)>,
    ) {
        self.summary_sizes[node] = summary_size;
        for (q, est, agg, exact) in answers {
            let slot = self.answers.entry(key_of(&q)).or_insert_with(|| {
                vec![(0.0, Aggregate::empty(q.agg), 0); self.summary_sizes.len()]
            });
            slot[node] = (est, agg, exact);
        }
    }

    /// Convenience: summarize + answer a fragment for a set of queries,
    /// then drop it. Fails if a query cannot execute against the
    /// fragment (nothing is recorded for this node in that case).
    pub fn record_fragment(
        &mut self,
        node: usize,
        table: &Table,
        queries: &[BoundQuery],
    ) -> Result<(), StoreError> {
        let summary = DataSummary::build(table);
        let answers: Vec<_> = queries
            .iter()
            .map(|q| {
                Ok((
                    q.clone(),
                    summary.estimate_rows(q),
                    execute(q, table)?,
                    count_matching(q, table),
                ))
            })
            .collect::<Result<_, StoreError>>()?;
        self.record(node, summary.wire_size(), answers);
        Ok(())
    }

    fn lookup(
        &self,
        node: usize,
        query: &BoundQuery,
    ) -> Result<&(f64, Aggregate, u64), StoreError> {
        self.answers
            .get(&key_of(query))
            .ok_or_else(|| StoreError::UnknownQuery(format!("{query:?}")))?
            .get(node)
            .ok_or_else(|| StoreError::UnknownQuery(format!("node {node} out of range")))
    }
}

impl DataProvider for Precomputed {
    fn summary_wire_size(&self, node: usize) -> u32 {
        self.summary_sizes[node]
    }

    fn estimate_rows(&self, node: usize, query: &BoundQuery) -> f64 {
        // Estimation has no error channel (it feeds predictors that must
        // always produce a number); an unregistered query here is a
        // harness bug.
        self.lookup(node, query).unwrap_or_else(|e| panic!("{e}")).0
    }

    fn execute(&self, node: usize, query: &BoundQuery) -> Result<Aggregate, StoreError> {
        Ok(self.lookup(node, query)?.1)
    }

    fn exact_rows(&self, node: usize, query: &BoundQuery) -> u64 {
        self.lookup(node, query).unwrap_or_else(|e| panic!("{e}")).2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaweed_store::{ColumnDef, DataType, Value};

    fn tiny_tables(n: usize) -> Vec<Table> {
        let schema = Schema::new(
            "T",
            vec![
                ColumnDef::new("a", DataType::Int, true),
                ColumnDef::new("v", DataType::Int, true),
            ],
        );
        (0..n)
            .map(|node| {
                let mut t = Table::new(schema.clone());
                for i in 0..50 {
                    t.insert(vec![
                        Value::Int((i % 5) as i64),
                        Value::Int((node * 100 + i) as i64),
                    ])
                    .unwrap();
                }
                t
            })
            .collect()
    }

    #[test]
    fn live_tables_answer_queries() {
        let lt = LiveTables::new(tiny_tables(3));
        let (_, b) = lt.bind("SELECT COUNT(*) FROM T WHERE a = 2", 0).unwrap();
        assert_eq!(lt.exact_rows(1, &b), 10);
        assert_eq!(lt.execute(1, &b).unwrap().finish(), Some(10.0));
        let est = lt.estimate_rows(1, &b);
        assert!((est - 10.0).abs() < 2.0, "estimate {est}");
        assert!(lt.summary_wire_size(0) > 0);
    }

    #[test]
    fn precomputed_round_trips_live_answers() {
        let lt = LiveTables::new(tiny_tables(4));
        let (_, b) = lt.bind("SELECT SUM(v) FROM T WHERE a >= 3", 0).unwrap();
        let mut pc = Precomputed::new(4);
        for node in 0..4 {
            pc.record_fragment(node, lt.table(node), std::slice::from_ref(&b))
                .unwrap();
        }
        for node in 0..4 {
            assert_eq!(pc.exact_rows(node, &b), lt.exact_rows(node, &b));
            assert_eq!(
                pc.execute(node, &b).unwrap().finish(),
                lt.execute(node, &b).unwrap().finish()
            );
            assert!((pc.estimate_rows(node, &b) - lt.estimate_rows(node, &b)).abs() < 1e-9);
            assert_eq!(pc.summary_wire_size(node), lt.summary_wire_size(node));
        }
    }

    #[test]
    #[should_panic(expected = "not pre-registered")]
    fn precomputed_rejects_unknown_queries() {
        let lt = LiveTables::new(tiny_tables(1));
        let (_, b) = lt.bind("SELECT COUNT(*) FROM T WHERE a = 0", 0).unwrap();
        let pc = Precomputed::new(1);
        let _ = pc.estimate_rows(0, &b);
    }

    #[test]
    fn precomputed_execute_errors_on_unknown_queries() {
        let lt = LiveTables::new(tiny_tables(1));
        let (_, b) = lt.bind("SELECT COUNT(*) FROM T WHERE a = 0", 0).unwrap();
        let pc = Precomputed::new(1);
        // Unlike estimation, execution has an error channel: the protocol
        // layer drops the contribution instead of crashing the run.
        assert!(matches!(
            pc.execute(0, &b),
            Err(StoreError::UnknownQuery(_))
        ));
    }
}
