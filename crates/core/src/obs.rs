//! Per-query lifecycle observability.
//!
//! The paper's user experience is a predicted completeness-over-time
//! curve the user watches while deciding when to stop waiting (§1, Figs
//! 5–8). [`QueryTimeline`] records the *actual* lifecycle of each
//! injected query — injection → dissemination fan-out → predictor
//! arrival → result-fragment arrivals → retries/give-ups — so the actual
//! completeness series can be laid alongside the prediction and every
//! stage's latency is measurable per query.
//!
//! Timelines are pure observation: updated from the protocol handlers
//! that already process each transition, they draw no randomness, arm no
//! timers and send nothing, so they cannot perturb a run. All state is
//! appended in event order, making per-seed output byte-stable.

use seaweed_types::{Duration, Time};

/// Lifecycle record of one query, parallel to the query registry.
#[derive(Clone, Debug, Default)]
pub struct QueryTimeline {
    /// Injection time at the origin.
    pub injected: Time,
    /// Dissemination messages issued on behalf of this query (initial
    /// route, tree fan-out, reissues and heal-time re-covers).
    pub dissem_msgs: u64,
    /// Subrange slots delegated to other endsystems across all of the
    /// query's dissemination tasks — the broadcast tree's total fan-out.
    pub dissem_fanout: u64,
    /// Subranges reissued after a dissemination timeout.
    pub dissem_reissues: u64,
    /// Subranges abandoned after exhausting reissues.
    pub give_ups: u64,
    /// When the aggregated predictor reached the origin.
    pub predictor_at: Option<Time>,
    /// Local executions submitted into the aggregation tree.
    pub submissions: u64,
    /// Unacked submissions retransmitted.
    pub result_retries: u64,
    /// First root-aggregate push accepted at the origin.
    pub first_result_at: Option<Time>,
    /// Latest accepted root-aggregate push.
    pub last_result_at: Option<Time>,
    /// Accepted result fragments at the origin: `(time, rows folded in)`,
    /// in arrival order. Mirrors `QueryState::progress` with just the
    /// row-count dimension used for completeness.
    pub fragments: Vec<(Time, u64)>,
    /// Backup dissemination sends issued for this query's silent
    /// subranges (hedged mode only).
    pub hedges_sent: u64,
    /// Hedged slots where the backup replied first.
    pub hedge_wins: u64,
    /// Hedged slots where the primary replied first.
    pub hedge_losses: u64,
    /// Payload bytes spent on hedges that lost the race (the duplicate
    /// send, plus the loser's reply when it eventually lands).
    pub hedge_wasted_bytes: u64,
    /// Local executions this query obtained through a shared table pass
    /// batched with co-resident queries (storm mode only).
    pub shared_scans: u64,
}

/// Per-query SLO report: delay-to-completeness checkpoints plus the
/// hedging cost/benefit counters, as exposed through
/// [`Seaweed::metrics`](crate::app::Seaweed::metrics) and the JSONL
/// trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SloReport {
    /// Delay from injection to 50% actual completeness.
    pub delay_to_c50: Option<Duration>,
    /// Delay from injection to 90% actual completeness.
    pub delay_to_c90: Option<Duration>,
    /// Delay from injection to 99% actual completeness.
    pub delay_to_c99: Option<Duration>,
    pub hedges_sent: u64,
    pub hedge_wins: u64,
    pub hedge_losses: u64,
    pub hedge_wasted_bytes: u64,
    /// Subranges abandoned after exhausting reissues.
    pub give_ups: u64,
}

impl QueryTimeline {
    #[must_use]
    pub fn new(injected: Time) -> Self {
        QueryTimeline {
            injected,
            ..QueryTimeline::default()
        }
    }

    /// Records an accepted result fragment at the origin.
    pub fn record_result(&mut self, at: Time, rows: u64) {
        if self.first_result_at.is_none() {
            self.first_result_at = Some(at);
        }
        self.last_result_at = Some(at);
        self.fragments.push((at, rows));
    }

    /// Injection → predictor-at-origin latency.
    #[must_use]
    pub fn time_to_predictor(&self) -> Option<Duration> {
        Some(self.predictor_at?.saturating_since(self.injected))
    }

    /// Injection → first accepted result latency.
    #[must_use]
    pub fn time_to_first_result(&self) -> Option<Duration> {
        Some(self.first_result_at?.saturating_since(self.injected))
    }

    /// Rows known at the origin at time `t`: the last fragment accepted
    /// at or before `t` (row counts at the origin are monotone for
    /// one-shot queries; for continuous queries this is simply the value
    /// current at `t`).
    #[must_use]
    pub fn rows_at(&self, t: Time) -> u64 {
        self.fragments
            .iter()
            .take_while(|&&(at, _)| at <= t)
            .last()
            .map_or(0, |&(_, rows)| rows)
    }

    /// Actual completeness at `t` against a total-row estimate (usually
    /// the predictor's): `rows_at(t) / total_rows`, clamped to [0, 1].
    /// `None` when no meaningful total exists.
    #[must_use]
    pub fn actual_completeness_at(&self, t: Time, total_rows: f64) -> Option<f64> {
        if !total_rows.is_finite() || total_rows <= 0.0 {
            return None;
        }
        Some((self.rows_at(t) as f64 / total_rows).min(1.0))
    }

    /// Delay from injection until actual completeness first reached
    /// `target` (0..=1) of `total_rows`; `None` if it never did.
    #[must_use]
    pub fn time_to_completeness(&self, target: f64, total_rows: f64) -> Option<Duration> {
        if !total_rows.is_finite() || total_rows <= 0.0 {
            return None;
        }
        let needed = target.clamp(0.0, 1.0) * total_rows;
        self.fragments
            .iter()
            .find(|&&(_, rows)| rows as f64 >= needed)
            .map(|&(at, _)| at.saturating_since(self.injected))
    }

    /// The query's SLO report against a total-row estimate (usually the
    /// predictor's).
    #[must_use]
    pub fn slo_report(&self, total_rows: f64) -> SloReport {
        SloReport {
            delay_to_c50: self.time_to_completeness(0.50, total_rows),
            delay_to_c90: self.time_to_completeness(0.90, total_rows),
            delay_to_c99: self.time_to_completeness(0.99, total_rows),
            hedges_sent: self.hedges_sent,
            hedge_wins: self.hedge_wins,
            hedge_losses: self.hedge_losses,
            hedge_wasted_bytes: self.hedge_wasted_bytes,
            give_ups: self.give_ups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Time {
        Time::ZERO + Duration::from_secs(s)
    }

    #[test]
    fn fragments_drive_completeness_series() {
        let mut tl = QueryTimeline::new(t(10));
        tl.record_result(t(12), 3);
        tl.record_result(t(20), 6);
        tl.record_result(t(50), 10);
        assert_eq!(tl.first_result_at, Some(t(12)));
        assert_eq!(tl.last_result_at, Some(t(50)));
        assert_eq!(tl.rows_at(t(11)), 0);
        assert_eq!(tl.rows_at(t(12)), 3);
        assert_eq!(tl.rows_at(t(30)), 6);
        assert_eq!(tl.rows_at(t(500)), 10);
        assert_eq!(tl.actual_completeness_at(t(20), 10.0), Some(0.6));
        assert_eq!(tl.actual_completeness_at(t(20), 0.0), None);
        // Overshoot (total estimate below reality) clamps to 1.
        assert_eq!(tl.actual_completeness_at(t(50), 8.0), Some(1.0));
        assert_eq!(
            tl.time_to_completeness(0.5, 10.0),
            Some(Duration::from_secs(10))
        );
        assert_eq!(tl.time_to_completeness(1.0, 20.0), None);
    }

    #[test]
    fn stage_latencies() {
        let mut tl = QueryTimeline::new(t(100));
        assert_eq!(tl.time_to_predictor(), None);
        assert_eq!(tl.time_to_first_result(), None);
        tl.predictor_at = Some(t(101));
        tl.record_result(t(130), 1);
        assert_eq!(tl.time_to_predictor(), Some(Duration::from_secs(1)));
        assert_eq!(tl.time_to_first_result(), Some(Duration::from_secs(30)));
    }

    #[test]
    fn slo_report_checkpoints_and_hedge_counters() {
        let mut tl = QueryTimeline::new(t(0));
        tl.record_result(t(5), 5);
        tl.record_result(t(60), 9);
        tl.record_result(t(600), 10);
        tl.hedges_sent = 3;
        tl.hedge_wins = 2;
        tl.hedge_losses = 1;
        tl.hedge_wasted_bytes = 77;
        tl.give_ups = 4;
        let slo = tl.slo_report(10.0);
        assert_eq!(slo.delay_to_c50, Some(Duration::from_secs(5)));
        assert_eq!(slo.delay_to_c90, Some(Duration::from_secs(60)));
        assert_eq!(slo.delay_to_c99, Some(Duration::from_secs(600)));
        assert_eq!(slo.hedges_sent, 3);
        assert_eq!(slo.hedge_wins, 2);
        assert_eq!(slo.hedge_losses, 1);
        assert_eq!(slo.hedge_wasted_bytes, 77);
        assert_eq!(slo.give_ups, 4);
        // No meaningful total: checkpoints are unknowable, counters stay.
        let none = tl.slo_report(0.0);
        assert_eq!(none.delay_to_c90, None);
        assert_eq!(none.hedges_sent, 3);
    }
}
