//! The result aggregation tree's vertex geometry (paper §3.4).
//!
//! Every query gets its own aggregation tree embedded in the Pastry
//! namespace. Tree vertices are keys (`vertexId`s); the deterministic
//! function `V(queryId, vertexId)` maps a vertex to its parent's key, and
//! iterating `V` from any starting key reaches `queryId` — the root — in
//! at most `128/b` steps.
//!
//! ## On the paper's formula
//!
//! The paper prints
//! `V = PREFIX(vertexId, 128/b - (len+1)) + SUFFIX(queryId, len+1)` with
//! `len = PREFIXLENGTH(queryId, vertexId)`. Read with `len` as the common
//! *prefix* length this is a fixed point (the digit at position `len`
//! never changes), so no tree forms. Read with `len` as the common
//! *suffix* length, every application extends the shared suffix by at
//! least one digit, the iteration converges to `queryId`, interior
//! vertices keep the child's high-order digits (spreading primaries
//! across the namespace — the "good load distribution" the paper claims),
//! and the leaf optimization below yields the O(log N) depth the paper
//! describes. We therefore implement the suffix reading and note the
//! discrepancy in DESIGN.md.

use seaweed_types::Id;

/// Length of the common suffix of `a` and `b` in base-2^b digits.
#[must_use]
pub fn suffix_len(a: Id, b_id: Id, b: u8) -> usize {
    let xor = a.0 ^ b_id.0;
    if xor == 0 {
        return Id::num_digits(b);
    }
    (xor.trailing_zeros() as usize) / b as usize
}

/// The parent vertexId of `vertex` in `query`'s aggregation tree, or
/// `None` if `vertex` is already the root (`vertex == query`).
#[must_use]
pub fn parent_vertex(query: Id, vertex: Id, b: u8) -> Option<Id> {
    if vertex == query {
        return None;
    }
    let n = Id::num_digits(b);
    let len = suffix_len(query, vertex, b);
    debug_assert!(len < n);
    // Keep the first n-(len+1) digits of the vertex; adopt the query's
    // last len+1 digits.
    Some(vertex.concat(n - (len + 1), query, b))
}

/// The whole chain from `start` (exclusive) up to and including the root
/// `query`.
#[must_use]
pub fn chain_to_root(query: Id, start: Id, b: u8) -> Vec<Id> {
    let mut out = Vec::new();
    let mut v = start;
    while let Some(p) = parent_vertex(query, v, b) {
        out.push(p);
        v = p;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: u8 = 4;

    #[test]
    fn suffix_len_counts_trailing_digits() {
        let q = Id(0xabcd);
        assert_eq!(suffix_len(q, Id(0xabcd), B), 32);
        assert_eq!(suffix_len(q, Id(0x1bcd), B), 3 + 28 - 28); // differs at digit 28
        assert_eq!(suffix_len(Id(0xf0), Id(0x00), B), 1);
        assert_eq!(suffix_len(Id(0x1), Id(0x2), B), 0);
    }

    #[test]
    fn parent_extends_shared_suffix() {
        let q = Id(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        let mut v = Id(0xffff_ffff_ffff_ffff_ffff_ffff_ffff_ffff);
        let mut prev_suffix = suffix_len(q, v, B);
        let mut steps = 0;
        while let Some(p) = parent_vertex(q, v, B) {
            let s = suffix_len(q, p, B);
            assert!(s > prev_suffix, "suffix must grow: {prev_suffix} -> {s}");
            prev_suffix = s;
            v = p;
            steps += 1;
            assert!(steps <= 32, "must converge within num_digits steps");
        }
        assert_eq!(v, q);
    }

    #[test]
    fn chain_reaches_root_from_anywhere() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let q = Id(rng.gen());
        for _ in 0..50 {
            let start = Id(rng.gen());
            let chain = chain_to_root(q, start, B);
            assert_eq!(*chain.last().unwrap(), q);
            assert!(chain.len() <= 32);
            // Chain entries are distinct.
            for i in 0..chain.len() {
                for j in 0..i {
                    assert_ne!(chain[i], chain[j]);
                }
            }
        }
    }

    #[test]
    fn two_children_with_same_suffix_share_a_parent() {
        // Children differing only above the replaced digits converge.
        let q = Id(0x1111);
        let a = Id(0xaa01);
        let bb = Id(0xbb01);
        // Both share suffix "1" (digit '1') with q of length... compute:
        let la = suffix_len(q, a, B);
        let lb = suffix_len(q, bb, B);
        assert_eq!(la, lb);
        let pa = parent_vertex(q, a, B).unwrap();
        let pb = parent_vertex(q, bb, B).unwrap();
        // Parents adopt q's last la+1 digits; high digits stay distinct.
        assert_eq!(pa.0 & 0xff, 0x11);
        assert_eq!(pb.0 & 0xff, 0x11);
        assert_ne!(pa, pb);
        // One more application each converges further.
        let gpa = chain_to_root(q, a, B);
        let gpb = chain_to_root(q, bb, B);
        assert_eq!(*gpa.last().unwrap(), q);
        assert_eq!(*gpb.last().unwrap(), q);
    }

    #[test]
    fn root_has_no_parent() {
        let q = Id(42);
        assert_eq!(parent_vertex(q, q, B), None);
        assert!(chain_to_root(q, q, B).is_empty());
    }
}
