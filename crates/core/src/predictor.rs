//! Completeness predictors (paper §2.1, §3.3).
//!
//! A completeness predictor is "a cumulative histogram of expected row
//! count over time": bucket zero counts rows on endsystems available right
//! now; later buckets count rows expected to become queryable after a
//! given delay, on a log-scaled time axis spanning seconds to weeks.
//! Predictors are aggregated element-wise up the dissemination tree, so
//! their size is constant regardless of how many endsystems contributed.

use seaweed_availability::ReturnPrediction;
use seaweed_types::{Duration, LogBuckets};

/// A (partial) completeness predictor.
#[derive(Clone)]
pub struct Predictor {
    buckets: LogBuckets,
    /// Rows available immediately (delay "zero").
    now_rows: f64,
    /// Expected rows becoming available in each delay bucket.
    later: Vec<f64>,
    /// Number of endsystems folded in (for diagnostics).
    endsystems: u64,
    /// Memoized wire encoding, cleared by every mutation. Excluded from
    /// `Debug`/`PartialEq` so observable behaviour (event-log
    /// fingerprints, equality) is independent of encoding history.
    encoded: std::cell::OnceCell<Vec<u8>>,
}

/// Matches the historical derived output field-for-field (the cache is
/// omitted): predictors appear inside Debug-formatted event logs whose
/// fingerprints must stay byte-identical.
impl std::fmt::Debug for Predictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Predictor")
            .field("buckets", &self.buckets)
            .field("now_rows", &self.now_rows)
            .field("later", &self.later)
            .field("endsystems", &self.endsystems)
            .finish()
    }
}

/// Semantic equality: the encoding cache is ignored.
impl PartialEq for Predictor {
    fn eq(&self, other: &Self) -> bool {
        self.buckets == other.buckets
            && self.now_rows == other.now_rows
            && self.later == other.later
            && self.endsystems == other.endsystems
    }
}

impl Predictor {
    #[must_use]
    pub fn new() -> Self {
        Self::with_buckets(LogBuckets::standard())
    }

    #[must_use]
    pub fn with_buckets(buckets: LogBuckets) -> Self {
        Predictor {
            buckets,
            now_rows: 0.0,
            later: vec![0.0; buckets.len()],
            endsystems: 0,
            encoded: std::cell::OnceCell::new(),
        }
    }

    /// Folds in an endsystem that is available now with `rows` relevant
    /// rows.
    pub fn add_available(&mut self, rows: f64) {
        self.now_rows += rows.max(0.0);
        self.endsystems += 1;
        self.encoded.take();
    }

    /// Folds in an endsystem that is available but whose scan is queued
    /// behind co-resident queries: its `rows` land after `delay` rather
    /// than immediately, shifting the curve the user sees under query
    /// storms.
    pub fn add_available_delayed(&mut self, rows: f64, delay: Duration) {
        if delay == Duration::ZERO {
            self.add_available(rows);
            return;
        }
        let i = self.buckets.index(delay);
        self.later[i] += rows.max(0.0);
        self.endsystems += 1;
        self.encoded.take();
    }

    /// Folds in an unavailable endsystem expected to return according to
    /// `pred`, holding `rows` relevant rows.
    pub fn add_unavailable(&mut self, rows: f64, pred: &ReturnPrediction) {
        let rows = rows.max(0.0);
        for &(delay, weight) in &pred.mass {
            let i = self.buckets.index(delay);
            self.later[i] += rows * weight;
        }
        self.endsystems += 1;
        self.encoded.take();
    }

    /// Merges another predictor (element-wise; both must share bucketing).
    pub fn merge(&mut self, other: &Predictor) {
        assert_eq!(self.buckets, other.buckets, "bucket scheme mismatch");
        self.now_rows += other.now_rows;
        for (a, b) in self.later.iter_mut().zip(&other.later) {
            *a += b;
        }
        self.endsystems += other.endsystems;
        self.encoded.take();
    }

    /// Expected rows queryable within `delay` of the prediction instant
    /// (the cumulative curve the user sees, Figure 2).
    #[must_use]
    pub fn expected_rows_within(&self, delay: Duration) -> f64 {
        let cut = self.buckets.index(delay);
        let mut total = self.now_rows;
        for (i, &rows) in self.later.iter().enumerate() {
            // A bucket's rows count as arrived once the delay passes its
            // representative (geometric-midpoint) delay.
            if i < cut || (i == cut && self.buckets.midpoint(i) <= delay) {
                total += rows;
            }
        }
        total
    }

    /// Total rows expected over all time.
    #[must_use]
    pub fn total_rows(&self) -> f64 {
        self.now_rows + self.later.iter().sum::<f64>()
    }

    /// Rows available immediately.
    #[must_use]
    pub fn immediate_rows(&self) -> f64 {
        self.now_rows
    }

    /// Expected completeness (0..=1) at `delay` — what the paper's user
    /// reads off to decide whether to wait.
    #[must_use]
    pub fn completeness_at(&self, delay: Duration) -> f64 {
        let total = self.total_rows();
        if total <= 0.0 {
            return 1.0;
        }
        self.expected_rows_within(delay) / total
    }

    /// Smallest bucketed delay at which expected completeness reaches
    /// `target` (0..=1); `None` if it never does.
    #[must_use]
    pub fn delay_for_completeness(&self, target: f64) -> Option<Duration> {
        let total = self.total_rows();
        if total <= 0.0 {
            return Some(Duration::ZERO);
        }
        let want = target.clamp(0.0, 1.0) * total;
        let mut acc = self.now_rows;
        if acc >= want {
            return Some(Duration::ZERO);
        }
        for (i, &rows) in self.later.iter().enumerate() {
            acc += rows;
            if acc >= want {
                return Some(self.buckets.midpoint(i));
            }
        }
        None
    }

    /// The cumulative curve as `(delay, expected rows)` points — one per
    /// bucket edge — for plotting (Figure 2, Figures 5–8 left panels).
    #[must_use]
    pub fn curve(&self) -> Vec<(Duration, f64)> {
        let mut out = Vec::with_capacity(self.later.len() + 1);
        let mut acc = self.now_rows;
        out.push((Duration::ZERO, acc));
        for (i, &rows) in self.later.iter().enumerate() {
            acc += rows;
            out.push((self.buckets.midpoint(i), acc));
        }
        out
    }

    #[must_use]
    pub fn endsystems(&self) -> u64 {
        self.endsystems
    }

    /// Serialized size: bucket vector as f32s plus a 16-byte header. With
    /// the standard 50-bucket scheme this is 220 bytes; the paper reports
    /// 776 bytes per endsystem for predictor aggregation including
    /// framing and retransmissions. Exactly [`Predictor::encode`]'s
    /// output length.
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        16 + 4 * (self.later.len() as u32 + 1)
    }

    /// Serializes the predictor to its wire format:
    /// `[magic u32][bucket count u32][endsystems u64][now f32][later f32 × n]`,
    /// all little-endian. Row counts are carried as f32 — a predictor is
    /// an estimate; 24 bits of mantissa dwarf its accuracy.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.encoded_bytes().to_vec()
    }

    /// The wire encoding, memoized: the byte buffer is built on first
    /// access and reused until the next mutation. Repeated encodes of an
    /// unchanged predictor (per-completion reports, retransmissions) cost
    /// a slice borrow instead of a fresh serialization.
    #[must_use]
    pub fn encoded_bytes(&self) -> &[u8] {
        self.encoded.get_or_init(|| {
            let mut out = Vec::with_capacity(self.wire_size() as usize);
            out.extend_from_slice(&MAGIC.to_le_bytes());
            out.extend_from_slice(&(self.later.len() as u32).to_le_bytes());
            out.extend_from_slice(&self.endsystems.to_le_bytes());
            out.extend_from_slice(&(self.now_rows as f32).to_le_bytes());
            for &v in &self.later {
                out.extend_from_slice(&(v as f32).to_le_bytes());
            }
            debug_assert_eq!(out.len(), self.wire_size() as usize);
            out
        })
    }

    /// Decodes a predictor previously produced by [`Predictor::encode`]
    /// with the same bucketing scheme. Returns `None` on malformed input.
    #[must_use]
    pub fn decode(bytes: &[u8], buckets: LogBuckets) -> Option<Self> {
        let mut r = Reader(bytes);
        if r.u32()? != MAGIC {
            return None;
        }
        let n = r.u32()? as usize;
        if n != buckets.len() {
            return None;
        }
        let endsystems = r.u64()?;
        let now_rows = f64::from(r.f32()?);
        let mut later = Vec::with_capacity(n);
        for _ in 0..n {
            later.push(f64::from(r.f32()?));
        }
        if !r.0.is_empty() {
            return None;
        }
        Some(Predictor {
            buckets,
            now_rows,
            later,
            endsystems,
            encoded: std::cell::OnceCell::new(),
        })
    }
}

impl Default for Predictor {
    fn default() -> Self {
        Self::new()
    }
}

const MAGIC: u32 = 0x5EA3_EDCF;

/// Tiny little-endian cursor for decoding.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Some(head)
    }

    // The `try_into` conversions cannot fail (`take(n)` returned exactly
    // `n` bytes), but this cursor sits on a message-decode path; route
    // the impossible case into the existing `None` (= malformed input)
    // channel instead of panicking.
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
    }

    fn f32(&mut self) -> Option<f32> {
        self.take(4)
            .and_then(|b| b.try_into().ok())
            .map(f32::from_le_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(delay: Duration) -> ReturnPrediction {
        ReturnPrediction::point(delay)
    }

    #[test]
    fn immediate_rows_dominate_at_zero_delay() {
        let mut p = Predictor::new();
        p.add_available(810.0);
        p.add_unavailable(190.0, &point(Duration::from_hours(8)));
        assert_eq!(p.total_rows(), 1000.0);
        assert_eq!(p.immediate_rows(), 810.0);
        assert!((p.completeness_at(Duration::ZERO) - 0.81).abs() < 1e-9);
        assert!((p.completeness_at(Duration::from_hours(9)) - 1.0).abs() < 1e-9);
        assert_eq!(p.endsystems(), 2);
    }

    #[test]
    fn distribution_mass_lands_in_buckets() {
        let mut p = Predictor::new();
        let pred = ReturnPrediction {
            mass: vec![
                (Duration::from_mins(10), 0.5),
                (Duration::from_hours(10), 0.5),
            ],
        };
        p.add_unavailable(100.0, &pred);
        let early = p.expected_rows_within(Duration::from_hours(1));
        assert!((early - 50.0).abs() < 1e-9, "early {early}");
        let late = p.expected_rows_within(Duration::from_hours(20));
        assert!((late - 100.0).abs() < 1e-9);
    }

    #[test]
    fn delayed_available_rows_shift_out_of_bucket_zero() {
        let mut p = Predictor::new();
        p.add_available_delayed(40.0, Duration::ZERO);
        p.add_available_delayed(60.0, Duration::from_mins(5));
        assert_eq!(p.immediate_rows(), 40.0);
        assert_eq!(p.total_rows(), 100.0);
        assert_eq!(p.endsystems(), 2);
        let soon = p.expected_rows_within(Duration::from_secs(1));
        assert!((soon - 40.0).abs() < 1e-9, "queued rows not yet in: {soon}");
        let later = p.expected_rows_within(Duration::from_hours(1));
        assert!((later - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_commutative_and_additive() {
        let mut a = Predictor::new();
        a.add_available(10.0);
        a.add_unavailable(5.0, &point(Duration::from_secs(30)));
        let mut b = Predictor::new();
        b.add_unavailable(7.0, &point(Duration::from_hours(2)));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_rows(), 22.0);
        assert_eq!(ab.endsystems(), 3);
    }

    #[test]
    fn delay_for_completeness_walks_the_curve() {
        let mut p = Predictor::new();
        p.add_available(80.0);
        p.add_unavailable(19.0, &point(Duration::from_hours(1)));
        p.add_unavailable(1.0, &point(Duration::from_days(3)));
        assert_eq!(p.delay_for_completeness(0.5), Some(Duration::ZERO));
        let d99 = p.delay_for_completeness(0.99).unwrap();
        assert!(
            d99 >= Duration::from_mins(30) && d99 <= Duration::from_hours(2),
            "{d99}"
        );
        let d100 = p.delay_for_completeness(1.0).unwrap();
        assert!(d100 >= Duration::from_days(2), "{d100}");
    }

    #[test]
    fn empty_predictor_is_trivially_complete() {
        let p = Predictor::new();
        assert_eq!(p.total_rows(), 0.0);
        assert_eq!(p.completeness_at(Duration::ZERO), 1.0);
        assert_eq!(p.delay_for_completeness(0.9), Some(Duration::ZERO));
    }

    #[test]
    fn curve_is_monotone() {
        let mut p = Predictor::new();
        p.add_available(5.0);
        for h in [1u64, 3, 9, 27] {
            p.add_unavailable(h as f64, &point(Duration::from_hours(h)));
        }
        let curve = p.curve();
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert!((curve.last().unwrap().1 - p.total_rows()).abs() < 1e-9);
    }

    #[test]
    fn encode_roundtrips_within_f32_precision() {
        let mut p = Predictor::new();
        p.add_available(812_345.0);
        for h in [1u64, 3, 9, 27, 81] {
            p.add_unavailable(1000.0 + h as f64, &point(Duration::from_hours(h)));
        }
        let bytes = p.encode();
        assert_eq!(bytes.len(), p.wire_size() as usize);
        let q = Predictor::decode(&bytes, LogBuckets::standard()).expect("decodes");
        assert_eq!(q.endsystems(), p.endsystems());
        let rel = (q.total_rows() - p.total_rows()).abs() / p.total_rows();
        assert!(rel < 1e-6, "f32 round-trip error {rel}");
        for d in [
            Duration::ZERO,
            Duration::from_hours(5),
            Duration::from_days(2),
        ] {
            assert!((q.completeness_at(d) - p.completeness_at(d)).abs() < 1e-6);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Predictor::decode(&[], LogBuckets::standard()).is_none());
        assert!(Predictor::decode(&[0u8; 220], LogBuckets::standard()).is_none());
        let good = Predictor::new().encode();
        // Truncated.
        assert!(Predictor::decode(&good[..good.len() - 1], LogBuckets::standard()).is_none());
        // Trailing junk.
        let mut long = good.clone();
        long.push(0);
        assert!(Predictor::decode(&long, LogBuckets::standard()).is_none());
        // Wrong bucket scheme.
        let other = LogBuckets::new(Duration::SECOND, Duration::from_hours(1), 4);
        assert!(Predictor::decode(&good, other).is_none());
    }

    #[test]
    fn mutate_after_encode_invalidates_memoized_bytes() {
        // Every mutator must clear the memoized wire encoding; a stale
        // cell would silently replay the pre-mutation bytes on the next
        // report retransmission.
        let mut p = Predictor::new();
        p.add_available(10.0);
        let first = p.encode();

        p.add_available(5.0);
        let after_add = p.encode();
        assert_ne!(first, after_add, "add_available must re-encode");

        p.add_unavailable(3.0, &point(Duration::from_hours(1)));
        let after_unavail = p.encode();
        assert_ne!(after_add, after_unavail, "add_unavailable must re-encode");

        let mut other = Predictor::new();
        other.add_available(2.0);
        let _ = other.encode();
        other.merge(&p);
        let after_merge = other.encode();
        assert_ne!(first, after_merge, "merge must re-encode");

        // Each snapshot decodes back to the state at encode time.
        let decoded = Predictor::decode(&after_unavail, LogBuckets::standard()).expect("decodes");
        assert_eq!(decoded.endsystems(), p.endsystems());
        assert!((decoded.total_rows() - p.total_rows()).abs() < 1e-3);
    }

    #[test]
    fn wire_size_is_constant() {
        let mut p = Predictor::new();
        let before = p.wire_size();
        for i in 0..1000 {
            p.add_available(i as f64);
        }
        assert_eq!(p.wire_size(), before);
        assert!(before < 1024, "predictors must stay small: {before}");
    }
}
