//! Wire-size model for Seaweed protocol messages.

/// Framing shared by all Seaweed messages above the overlay header.
pub const SEAWEED_HEADER: u32 = 24;

/// Availability model size — Table 1's `a` = 48 bytes.
pub const AVAILABILITY_MODEL: u32 = 48;

/// Metadata push: summary (h, per endsystem) + availability model (a).
#[must_use]
pub fn meta_push(summary_size: u32) -> u32 {
    SEAWEED_HEADER + summary_size + AVAILABILITY_MODEL
}

/// Query dissemination message: queryId + namespace range + query text.
#[must_use]
pub fn disseminate(query_text_len: usize) -> u32 {
    SEAWEED_HEADER + 16 + 32 + query_text_len as u32
}

/// Predictor report from a dissemination-tree child to its parent.
#[must_use]
pub fn predictor_report(predictor_size: u32) -> u32 {
    SEAWEED_HEADER + 16 + 32 + predictor_size
}

/// Result submission into the aggregation tree (queryId, vertexId,
/// child key, version, aggregate state).
pub const RESULT_SUBMIT: u32 = SEAWEED_HEADER + 16 + 16 + 16 + 8 + 40;

/// Ack of a result submission.
pub const RESULT_ACK: u32 = SEAWEED_HEADER + 16 + 16 + 8;

/// Vertex state replication to a backup: per-child entries.
#[must_use]
pub fn vertex_replicate(children: usize) -> u32 {
    SEAWEED_HEADER + 16 + 16 + (children as u32) * (16 + 8 + 40)
}

/// Active-query list transfer to a newly joined endsystem.
#[must_use]
pub fn query_list(total_text: usize, queries: usize) -> u32 {
    SEAWEED_HEADER + (queries as u32) * 24 + total_text as u32
}
