//! Runtime invariant oracles for chaos testing.
//!
//! A [`ChaosOracle`] inspects the full protocol state (the simulator is
//! monolithic, so it can see every endsystem at once) and reports
//! violations of the guarantees Seaweed must keep **under any fault
//! schedule** — partitions, correlated outages, crash-amnesia, message
//! duplication and reordering:
//!
//! 1. **Exactly-once contribution**: no child key is counted by more
//!    than one aggregation-tree vertex of the same query, and a one-shot
//!    query's result never exceeds the population's true row count.
//! 2. **Monotone completeness**: a one-shot origin's progress history
//!    never regresses (the root-version guard must hold under
//!    duplication and reordering).
//! 3. **No orphaned state**: once a query terminates, no dissemination
//!    task, vertex state, pending submission, epoch record or leaf
//!    target for it survives anywhere.
//! 4. **Predictor sanity**: an aggregated completeness predictor is
//!    finite, non-negative, and within a slack factor of the true
//!    population.
//! 5. **Index consistency**: the metadata holder maps and vertex
//!    membership maps stay mutual inverses, and crash-amnesia stashes
//!    never alias live state.
//! 6. **Tail-tolerance hygiene**: hedge accounting is consistent (wins
//!    plus losses never exceed hedges sent, per query and globally),
//!    and in hedged mode — which disarms timers eagerly — no armed
//!    dissemination or hedge timer references a reported task, a
//!    dropped task, or a dead query.

use seaweed_sim::NodeIdx;
use seaweed_types::Id;

use crate::app::{QueryKind, Seaweed, SeaweedEngine, TimerAction};
use crate::provider::DataProvider;

/// Invariant checker over the whole simulated deployment. Construct once
/// per run and call [`check`](Self::check) as often as desired — during
/// the run (between events) and after it.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOracle {
    /// Ground-truth total number of rows matching the queries across the
    /// entire population (available and unavailable endsystems). `0`
    /// disables the population-bound checks.
    pub population_rows: u64,
    /// Slack factor for the predictor bound (estimates come from
    /// histogram summaries, so allow some overshoot).
    pub predictor_slack: f64,
}

impl ChaosOracle {
    #[must_use]
    pub fn new(population_rows: u64) -> Self {
        ChaosOracle {
            population_rows,
            predictor_slack: 2.0,
        }
    }

    /// Runs every invariant; returns human-readable violations (empty =
    /// clean).
    #[must_use]
    pub fn check<P: DataProvider>(&self, sw: &Seaweed<P>, eng: &SeaweedEngine) -> Vec<String> {
        let mut v = Vec::new();
        self.check_exactly_once(sw, &mut v);
        self.check_monotone_progress(sw, &mut v);
        self.check_no_orphans(sw, &mut v);
        self.check_predictors(sw, &mut v);
        self.check_index_consistency(sw, eng, &mut v);
        self.check_tail_tolerance(sw, &mut v);
        // (7) Storm hygiene: admission budget, slot free-list and scan
        // scheduler consistency (no-op checks when storm mode is off).
        v.extend(sw.storm_invariant_violations());
        v
    }

    /// Like [`check`](Self::check) but panics with the full violation
    /// list, for use inside tests.
    pub fn assert_clean<P: DataProvider>(&self, sw: &Seaweed<P>, eng: &SeaweedEngine) {
        let violations = self.check(sw, eng);
        assert!(
            violations.is_empty(),
            "chaos oracle violations:\n  {}",
            violations.join("\n  ")
        );
    }

    /// (1) Each child key feeds at most one vertex per query, and the
    /// origin's row count never exceeds the true population.
    fn check_exactly_once<P: DataProvider>(&self, sw: &Seaweed<P>, out: &mut Vec<String>) {
        for (h, q) in sw.queries.iter().enumerate() {
            let h = h as u32;
            let mut seen: std::collections::BTreeMap<Id, u128> = std::collections::BTreeMap::new();
            for ((qh, vertex), state) in sw.vertices.iter() {
                if qh != h {
                    continue;
                }
                for &child in state.children.keys() {
                    if let Some(prev) = seen.insert(child, vertex.0) {
                        out.push(format!(
                            "query {h}: child {:x} counted by two vertices ({prev:x} and {:x})",
                            child.0, vertex.0
                        ));
                    }
                }
            }
            if self.population_rows > 0
                && q.kind == QueryKind::OneShot
                && q.rows() > self.population_rows
            {
                out.push(format!(
                    "query {h}: origin saw {} rows > population {}",
                    q.rows(),
                    self.population_rows
                ));
            }
        }
    }

    /// (2) A one-shot origin's progress history is non-decreasing in
    /// rows (completeness never regresses).
    fn check_monotone_progress<P: DataProvider>(&self, sw: &Seaweed<P>, out: &mut Vec<String>) {
        for (h, q) in sw.queries.iter().enumerate() {
            if q.kind != QueryKind::OneShot {
                continue;
            }
            for w in q.progress.windows(2) {
                let ((t0, r0, _), (t1, r1, _)) = (w[0], w[1]);
                if t1 < t0 || r1 < r0 {
                    out.push(format!(
                        "query {h}: progress regressed ({r0} rows @{} -> {r1} rows @{})",
                        t0.as_micros(),
                        t1.as_micros()
                    ));
                }
            }
        }
    }

    /// (3) Terminated queries leave no protocol state behind.
    fn check_no_orphans<P: DataProvider>(&self, sw: &Seaweed<P>, out: &mut Vec<String>) {
        let dead = |h: u32| !sw.queries[h as usize].active;
        for (node, h, _, _) in sw.tasks.keys() {
            if dead(h) {
                out.push(format!(
                    "node {node}: dissemination task for dead query {h}"
                ));
            }
        }
        for (h, vertex) in sw.vertices.keys() {
            if dead(h) {
                out.push(format!(
                    "vertex {:x}: state survives dead query {h}",
                    vertex.0
                ));
            }
        }
        for (n, nv) in sw.node_vertices.iter().enumerate() {
            for &(h, vertex) in nv {
                if dead(h) {
                    out.push(format!(
                        "node {n}: vertex membership {:x} survives dead query {h}",
                        vertex.0
                    ));
                }
            }
        }
        for (node, h, _) in sw.pending_submits.keys() {
            if dead(h) {
                out.push(format!("node {node}: pending submit for dead query {h}"));
            }
        }
        for (node, h) in sw.cont_epoch.keys() {
            if dead(h) {
                out.push(format!("node {node}: epoch record for dead query {h}"));
            }
        }
        for (node, h) in sw.leaf_targets.keys() {
            if dead(h) {
                out.push(format!("node {node}: leaf target for dead query {h}"));
            }
        }
        for &(node, h, _) in &sw.gave_up {
            if dead(h) {
                out.push(format!(
                    "node {}: given-up dissemination range for dead query {h}",
                    node.0
                ));
            }
        }
    }

    /// (4) Aggregated predictors are finite, non-negative, and within a
    /// slack factor of the true population.
    fn check_predictors<P: DataProvider>(&self, sw: &Seaweed<P>, out: &mut Vec<String>) {
        for (h, q) in sw.queries.iter().enumerate() {
            let Some(p) = q.predictor.as_ref() else {
                continue;
            };
            let total = p.total_rows();
            if !total.is_finite() || total < 0.0 {
                out.push(format!("query {h}: predictor total_rows is {total}"));
            } else if self.population_rows > 0
                && total > self.predictor_slack * self.population_rows as f64
            {
                out.push(format!(
                    "query {h}: predictor total {total} exceeds {}x population {}",
                    self.predictor_slack, self.population_rows
                ));
            }
        }
    }

    /// (5) Holder maps and vertex membership maps are mutual inverses;
    /// amnesia stashes never alias live index state.
    fn check_index_consistency<P: DataProvider>(
        &self,
        sw: &Seaweed<P>,
        eng: &SeaweedEngine,
        out: &mut Vec<String>,
    ) {
        let n = sw.held_by.len();
        for owner in 0..n {
            for &holder in &sw.holders[owner] {
                if !sw.held_by[holder.idx()].contains(&NodeIdx(owner as u32)) {
                    out.push(format!(
                        "holder map: {} holds {owner} but reverse index disagrees",
                        holder.0
                    ));
                }
            }
        }
        for holder in 0..n {
            for &owner in &sw.held_by[holder] {
                if !sw.holders[owner.idx()].contains(&NodeIdx(holder as u32)) {
                    out.push(format!(
                        "holder map: {holder} listed for {} but forward index disagrees",
                        owner.0
                    ));
                }
            }
        }
        for ((h, vertex), state) in sw.vertices.iter() {
            for &m in &state.holders {
                if !sw.node_vertices[m.idx()].contains(&(h, vertex)) {
                    out.push(format!(
                        "vertex {:x} (query {h}): holder {} missing from node index",
                        vertex.0, m.0
                    ));
                }
            }
        }
        for (m, nv) in sw.node_vertices.iter().enumerate() {
            for &(h, vertex) in nv {
                let ok = sw
                    .vertices
                    .get(&(h, vertex))
                    .is_some_and(|s| s.holders.contains(&NodeIdx(m as u32)));
                if !ok {
                    out.push(format!(
                        "node {m}: claims membership in vertex {:x} (query {h}) it does not hold",
                        vertex.0
                    ));
                }
            }
        }
        for m in 0..n {
            let node = NodeIdx(m as u32);
            if (!sw.amnesia_meta[m].is_empty() || !sw.amnesia_vertices[m].is_empty())
                && eng.is_up(node)
            {
                out.push(format!("node {m}: amnesia stash survived rejoin"));
            }
            for &owner in &sw.amnesia_meta[m] {
                if sw.holders[owner.idx()].contains(&node) {
                    out.push(format!(
                        "node {m}: stashed metadata for {} still in live holder map",
                        owner.0
                    ));
                }
            }
            for &(h, vertex) in &sw.amnesia_vertices[m] {
                let aliased = sw
                    .vertices
                    .get(&(h, vertex))
                    .is_some_and(|s| s.holders.contains(&node));
                if aliased {
                    out.push(format!(
                        "node {m}: stashed vertex {:x} (query {h}) still in live holder set",
                        vertex.0
                    ));
                }
            }
        }
    }

    /// (6) Tail-tolerance hygiene. Hedged mode cancels timers eagerly
    /// (on report, expiry and heal re-arm), so any armed dissemination
    /// or hedge timer must reference a live, still-collecting task of an
    /// active query. The baseline deliberately lets no-op timers fire,
    /// so with hedging off only the accounting checks apply (all hedge
    /// counters must be zero and no hedge timer may exist at all).
    fn check_tail_tolerance<P: DataProvider>(&self, sw: &Seaweed<P>, out: &mut Vec<String>) {
        for (h, tl) in sw.timelines.iter().enumerate() {
            if tl.hedge_wins + tl.hedge_losses > tl.hedges_sent {
                out.push(format!(
                    "query {h}: hedge accounting inconsistent ({} wins + {} losses > {} sent)",
                    tl.hedge_wins, tl.hedge_losses, tl.hedges_sent
                ));
            }
        }
        let s = &sw.stats;
        if s.hedge_wins + s.hedge_losses > s.hedges_sent {
            out.push(format!(
                "global hedge accounting inconsistent ({} wins + {} losses > {} sent)",
                s.hedge_wins, s.hedge_losses, s.hedges_sent
            ));
        }
        let hedging = sw.cfg.hedge.is_some();
        if !hedging && s.hedges_sent + s.hedge_wins + s.hedge_losses + s.hedge_wasted_bytes != 0 {
            out.push("hedging disabled but hedge counters are nonzero".to_string());
        }
        for (&seq, action) in &sw.timers {
            let (kind, task) = match *action {
                TimerAction::DissemTimeout { task, .. } => ("dissem-timeout", task),
                TimerAction::HedgeTimeout { task, .. } => ("hedge-timeout", task),
                TimerAction::QueryKick { query, .. } => {
                    // Armed only by tail tolerance, and disarmed the
                    // moment any aggregate reaches the origin.
                    if !sw.tail_tolerance_active() {
                        out.push(format!(
                            "timer {seq}: query-kick timer armed with tail tolerance off"
                        ));
                    } else {
                        let q = &sw.queries[query as usize];
                        let got_report = match q.kind {
                            crate::app::QueryKind::View { .. } => q.latest.is_some(),
                            _ => q.predictor.is_some(),
                        };
                        if !q.active || got_report {
                            out.push(format!(
                                "timer {seq}: armed query-kick timer but query {query} \
                                 is finished or already has its report"
                            ));
                        }
                    }
                    continue;
                }
                _ => continue,
            };
            if kind == "hedge-timeout" && !hedging {
                out.push(format!(
                    "timer {seq}: hedge timer armed with hedging disabled"
                ));
                continue;
            }
            if !hedging {
                continue; // baseline no-op fires are expected
            }
            let alive = sw.queries[task.1 as usize].active
                && sw.tasks.get(&task).is_some_and(|t| !t.reported);
            if !alive {
                out.push(format!(
                    "timer {seq}: armed {kind} timer references a finished task of query {}",
                    task.1
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use proptest::prelude::*;
    use seaweed_overlay::{Overlay, OverlayConfig};
    use seaweed_sim::{Engine, NodeIdx, SimConfig, UniformTopology};
    use seaweed_store::{Aggregate, ColumnDef, DataType, Schema, Table, Value};
    use seaweed_types::{Duration, Id, Time};

    use super::ChaosOracle;
    use crate::app::{Seaweed, SeaweedConfig, SeaweedEngine, VertexState};
    use crate::provider::LiveTables;

    const N: usize = 12;
    const SQL: &str = "SELECT SUM(v) FROM T WHERE flag = 1";

    fn world(seed: u64) -> (SeaweedEngine, Seaweed<LiveTables>) {
        let schema = Schema::new(
            "T",
            vec![
                ColumnDef::new("flag", DataType::Int, true),
                ColumnDef::new("v", DataType::Int, true),
            ],
        );
        let mut tables = Vec::with_capacity(N);
        for node in 0..N {
            let mut t = Table::new(schema.clone());
            t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
                .unwrap();
            tables.push(t);
        }
        let eng: SeaweedEngine = Engine::new(
            Box::new(UniformTopology::new(N, Duration::from_millis(5))),
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        );
        let overlay = Overlay::new(
            Overlay::random_ids(N, seed),
            OverlayConfig {
                seed,
                ..Default::default()
            },
        );
        let sw = Seaweed::new(
            overlay,
            LiveTables::new(tables),
            SeaweedConfig {
                seed,
                ..Default::default()
            },
        );
        (eng, sw)
    }

    /// Runs a small deployment, then injects synthetic invariant
    /// violations touching every registry the oracle iterates:
    /// duplicate child keys spread over several vertices, plus a query
    /// marked dead while its protocol state survives.
    fn violations(seed: u64) -> Vec<String> {
        let (mut eng, mut sw) = world(seed);
        for i in 0..N {
            eng.schedule_up(Time(1 + i as u64 * 200_000), NodeIdx(i as u32));
        }
        sw.run_until(&mut eng, Time(30_000_000));
        let schema = sw.provider.schema().clone();
        let (_, bound) = sw.provider.bind(SQL, 0).unwrap();
        let h = sw
            .inject_query(&mut eng, NodeIdx(0), SQL, Duration::from_secs(600), &schema)
            .unwrap();
        sw.run_until(&mut eng, Time(45_000_000));

        // Several synthetic vertices sharing one pool of child keys: every
        // key after its first sighting is an exactly-once violation, and
        // which sighting counts as "first" depends on vertex-map iteration
        // order — exactly what this regression pins down.
        for v in 0..4u128 {
            let mut children = BTreeMap::new();
            for c in 0..6u128 {
                children.insert(Id(0x1000 + c), (1, Aggregate::empty(bound.agg)));
            }
            sw.vertices.insert(
                (h, Id(0xdead_0000 + v)),
                VertexState {
                    children,
                    holders: Vec::new(),
                    out_version: 0,
                    cached: None,
                },
            );
        }
        // Kill the query but leave all its state: everything above (and
        // any real tasks/submits the run built) becomes an orphan.
        sw.queries[h as usize].active = false;
        ChaosOracle::new(0).check(&sw, &eng)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6 })]

        /// The oracle walks order-stable registries (BTreeMaps), so two
        /// independently built worlds under the same seed must report the
        /// same violations in the same order. Hash-map registries would
        /// fail this within a single process: `RandomState` differs per
        /// map instance, not per run.
        #[test]
        fn verdict_ordering_identical_across_runs(seed in 0u64..1_000) {
            let a = violations(seed);
            let b = violations(seed);
            prop_assert!(!a.is_empty(), "fault injection produced no violations");
            prop_assert_eq!(a, b);
        }
    }
}
