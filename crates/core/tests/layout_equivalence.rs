//! Arena/SoA hot-state layout equivalence (the PR-1/PR-5 determinism
//! bar, applied to the container refactor): under the full chaos plan —
//! structural partition, crash-amnesia, correlated outage, link
//! degradation, duplication, reordering — the arena layout must produce
//! a byte-identical run to the retained map-based layout on **both**
//! scheduler backends: same event-log fingerprint, same rows, and a
//! byte-identical final `BandwidthReport`.
//!
//! Also proves freed per-query slab slots don't leak state into a later
//! query: after one query expires, a second query over the same (block-
//! recycled) arena storage converges and the exactly-once oracle stays
//! clean.

use proptest::prelude::*;
use seaweed_core::{ChaosOracle, LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{LayoutKind, Overlay, OverlayConfig, OverlayMsg};
use seaweed_sim::{
    CorpNetTopology, CrashSpec, Engine, Event, FaultPlan, LinkFaultSpec, NodeIdx, OutageSpec,
    PartitionSpec, SchedulerKind, SimConfig,
};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

const N: usize = 36;
const ROUTERS: usize = 24;
/// Query injection time; all fault windows are anchored after it.
const T0: u64 = 600_000_000; // 600 s in µs

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// The chaos.rs fault plan, verbatim: cut the largest regional subtree,
/// amnesia-outage the biggest branch, degrade one router pair, crash two
/// bystanders.
fn chaos_plan(topo: &CorpNetTopology) -> FaultPlan {
    let regional = (topo.num_core()..topo.num_core() + topo.num_regional())
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .unwrap();
    let partition = PartitionSpec::from_router_cut(topo, regional, secs(602), secs(780));
    let branch = topo
        .branch_routers()
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .unwrap();
    let outage = OutageSpec::branch_outage(topo, branch, secs(640), secs(700), true);
    let excluded: Vec<u32> = partition
        .members
        .iter()
        .chain(outage.members.iter())
        .copied()
        .collect();
    let bystanders: Vec<u32> = (1..N as u32)
        .filter(|m| !excluded.contains(m))
        .take(2)
        .collect();
    let crashes = vec![
        CrashSpec {
            node: NodeIdx(bystanders[0]),
            at: secs(630),
            rejoin_after: Duration::from_secs(60),
        },
        CrashSpec {
            node: NodeIdx(bystanders[1]),
            at: secs(690),
            rejoin_after: Duration::from_secs(45),
        },
    ];
    let za = topo.router_of(NodeIdx(1)) as u32;
    let mut zb = topo.router_of(NodeIdx(2)) as u32;
    if zb == za {
        zb = topo.router_of(NodeIdx(3)) as u32;
    }
    FaultPlan {
        partitions: vec![partition],
        link_faults: vec![LinkFaultSpec {
            zone_a: za,
            zone_b: zb,
            from: secs(600),
            until: secs(720),
            extra_loss: 0.15,
            latency_mult: 3.0,
        }],
        crashes,
        outages: vec![outage],
        dup_rate: 0.02,
        reorder_window: Duration::from_millis(50),
    }
}

fn world(
    seed: u64,
    layout: LayoutKind,
    scheduler: SchedulerKind,
) -> (SeaweedEngine, Seaweed<LiveTables>, Schema) {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(N);
    for node in 0..N {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .unwrap();
        tables.push(t);
    }
    let topo = CorpNetTopology::with_params(N, ROUTERS, Duration::MILLISECOND, seed);
    let plan = chaos_plan(&topo);
    let eng: SeaweedEngine = Engine::new(
        Box::new(topo),
        SimConfig {
            seed,
            scheduler,
            loss_rate: 0.01,
            faults: Some(plan),
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(N, seed),
        OverlayConfig {
            seed,
            layout,
            ..Default::default()
        },
    );
    let sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed,
            ..Default::default()
        },
    );
    (eng, sw, schema)
}

/// FNV-1a fingerprint over a compact per-event descriptor (ordering,
/// endpoints and timestamps pin the schedule bit-for-bit).
struct EventLog {
    hash: u64,
    len: u64,
}

impl EventLog {
    fn new() -> Self {
        EventLog {
            hash: 0xcbf2_9ce4_8422_2325,
            len: 0,
        }
    }

    fn add(&mut self, t: Time, ev: &Event<OverlayMsg<seaweed_core::SeaweedMsg>>) {
        let desc = match *ev {
            Event::Message { from, to, .. } => format!("m:{}:{}:{}", t.as_micros(), from.0, to.0),
            Event::Timer { node, tag } => format!("t:{}:{}:{tag}", t.as_micros(), node.0),
            Event::NodeUp { node } => format!("u:{}:{}", t.as_micros(), node.0),
            Event::NodeDown { node } => format!("d:{}:{}", t.as_micros(), node.0),
            Event::NodeCrash { node } => format!("c:{}:{}", t.as_micros(), node.0),
            Event::PartitionStart { partition } => format!("ps:{}:{partition}", t.as_micros()),
            Event::PartitionEnd { partition } => format!("pe:{}:{partition}", t.as_micros()),
        };
        for b in desc.as_bytes() {
            self.hash ^= u64::from(*b);
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
        self.len += 1;
    }
}

struct RunResult {
    log_hash: u64,
    log_len: u64,
    rows: u64,
    violations: Vec<String>,
    /// Full `Debug` rendering of the final [`seaweed_sim::BandwidthReport`]
    /// — per-class totals, CDFs and drop statistics, compared verbatim.
    report: String,
}

fn run_chaos(seed: u64, layout: LayoutKind, scheduler: SchedulerKind) -> RunResult {
    let (mut eng, mut sw, schema) = world(seed, layout, scheduler);
    for i in 0..N {
        eng.schedule_up(Time(1 + i as u64 * 300_000), NodeIdx(i as u32));
    }
    let mut log = EventLog::new();
    let mut drive = |eng: &mut SeaweedEngine, sw: &mut Seaweed<LiveTables>, horizon: Time| {
        while let Some((t, ev)) = eng.next_event_before(horizon) {
            log.add(t, &ev);
            sw.dispatch(eng, ev);
        }
    };
    drive(&mut eng, &mut sw, Time(T0));
    assert_eq!(sw.overlay.num_joined(), N, "all join before the faults");

    sw.inject_query(
        &mut eng,
        NodeIdx(0),
        "SELECT SUM(v) FROM T WHERE flag = 1",
        Duration::from_hours(4),
        &schema,
    )
    .unwrap();

    let oracle = ChaosOracle::new(N as u64);
    let mut violations = Vec::new();
    for t in [650, 720, 800, 1000, 1500] {
        drive(&mut eng, &mut sw, secs(t));
        violations.extend(oracle.check(&sw, &eng));
    }

    RunResult {
        log_hash: log.hash,
        log_len: log.len,
        rows: sw.query(0).rows(),
        violations,
        report: format!("{:?}", eng.finish()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole equivalence bar: per seed, run the full chaos plan
    /// under every (layout × scheduler) combination. All four runs must
    /// be oracle-clean, and within each scheduler the arena layout must
    /// match the map layout byte-for-byte: event-log fingerprint, rows
    /// at the origin, and the final bandwidth report.
    #[test]
    fn arena_layout_is_byte_identical_to_map_layout(seed in 0u64..10_000) {
        for scheduler in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let map = run_chaos(seed, LayoutKind::Map, scheduler);
            let arena = run_chaos(seed, LayoutKind::Arena, scheduler);
            for (run, name) in [(&map, "map"), (&arena, "arena")] {
                prop_assert!(
                    run.violations.is_empty(),
                    "oracle violations ({name}, seed {seed}, {scheduler:?}):\n  {}",
                    run.violations.join("\n  ")
                );
            }
            prop_assert_eq!(
                map.log_hash, arena.log_hash,
                "event logs diverged (seed {}, {:?})", seed, scheduler
            );
            prop_assert_eq!(map.log_len, arena.log_len);
            prop_assert_eq!(map.rows, arena.rows);
            prop_assert_eq!(
                &map.report, &arena.report,
                "bandwidth reports diverged (seed {}, {:?})", seed, scheduler
            );
        }
    }
}

/// Slab/block reuse across query lifecycles: a first query's expiry
/// returns its vertex slots and per-query blocks to the free pools; a
/// second query then reuses them. The second query must converge to full
/// completeness and the exactly-once oracle must stay clean throughout —
/// any state leaking out of a recycled slot (stale children, holders,
/// epochs, leaf targets) would trip it.
#[test]
fn freed_query_slots_do_not_leak_into_reused_handles() {
    for layout in [LayoutKind::Map, LayoutKind::Arena] {
        let (mut eng, mut sw, schema) = world(7, layout, SchedulerKind::Wheel);
        for i in 0..N {
            eng.schedule_up(Time(1 + i as u64 * 300_000), NodeIdx(i as u32));
        }
        let drive = |eng: &mut SeaweedEngine, sw: &mut Seaweed<LiveTables>, horizon: Time| {
            while let Some((_, ev)) = eng.next_event_before(horizon) {
                sw.dispatch(eng, ev);
            }
        };
        drive(&mut eng, &mut sw, Time(T0));

        // First query: short lifetime so it expires mid-run.
        let h0 = sw
            .inject_query(
                &mut eng,
                NodeIdx(0),
                "SELECT SUM(v) FROM T WHERE flag = 1",
                Duration::from_secs(120),
                &schema,
            )
            .unwrap();
        drive(&mut eng, &mut sw, secs(900));
        assert!(!sw.query(h0).active, "first query must have expired");

        // Second query reuses the recycled arena storage.
        let h1 = sw
            .inject_query(
                &mut eng,
                NodeIdx(0),
                "SELECT COUNT(*) FROM T WHERE flag = 1",
                Duration::from_hours(2),
                &schema,
            )
            .unwrap();
        assert_ne!(h0, h1, "handles are never reused");
        drive(&mut eng, &mut sw, secs(1800));

        let oracle = ChaosOracle::new(N as u64);
        oracle.assert_clean(&sw, &eng);
        assert_eq!(
            sw.query(h1).rows(),
            N as u64,
            "second query converges ({layout:?})"
        );
    }
}
