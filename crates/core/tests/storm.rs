//! Storm-mode tests: the concurrent multi-query engine (admission
//! control, slot recycling behind generation counters, fair scan
//! scheduling) against the PR-1/PR-5 determinism bar.
//!
//! * A K=1 storm run must be **byte-identical** to the storm-off
//!   baseline under the full chaos plan: same event-log fingerprint,
//!   same rows, same bandwidth report. The storm machinery may only
//!   change behaviour when queries actually contend.
//! * K concurrent queries must each converge to the same rows they get
//!   when run alone (same seed), across Map × Arena layouts and both
//!   scheduler backends — fair scheduling may reorder work but must
//!   never lose or duplicate contributions.
//! * Under the full chaos plan with slot-recycling pressure the run
//!   must stay oracle-clean (exactly-once, predictor sanity, storm
//!   hygiene) and be bit-stable across repeated runs, for 16 seeds.
//! * A delayed reply addressed to an expired query's recycled slot must
//!   be rejected at the message boundary (`stale_handle_drops`), leaving
//!   the slot's new tenant untouched.

use proptest::prelude::*;
use seaweed_core::{
    ChaosOracle, LiveTables, Seaweed, SeaweedConfig, SeaweedEngine, SeaweedMsg, StormConfig,
    Submission,
};
use seaweed_overlay::{LayoutKind, Overlay, OverlayConfig, OverlayMsg};
use seaweed_sim::{
    CorpNetTopology, CrashSpec, Engine, Event, FaultPlan, LinkFaultSpec, NodeIdx, OutageSpec,
    PartitionSpec, Payload, SchedulerKind, SimConfig,
};
use seaweed_store::{AggFunc, Aggregate, ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

const N: usize = 36;
const ROUTERS: usize = 24;
/// Rows per endsystem fragment, all matching every test predicate.
/// More than one row so that `quantum_rows: 1` storm configs force a
/// scan through multiple preemption quanta (exercising the slicing
/// path, not just the batching path).
const ROWS_PER_NODE: usize = 3;
/// Ground-truth matching rows across the population.
const TOTAL_ROWS: u64 = (N * ROWS_PER_NODE) as u64;
/// Query injection time; all fault windows are anchored after it.
const T0: u64 = 600_000_000; // 600 s in µs

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// The chaos.rs fault plan, verbatim: cut the largest regional subtree,
/// amnesia-outage the biggest branch, degrade one router pair, crash two
/// bystanders.
fn chaos_plan(topo: &CorpNetTopology) -> FaultPlan {
    let regional = (topo.num_core()..topo.num_core() + topo.num_regional())
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .unwrap();
    let partition = PartitionSpec::from_router_cut(topo, regional, secs(602), secs(780));
    let branch = topo
        .branch_routers()
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .unwrap();
    let outage = OutageSpec::branch_outage(topo, branch, secs(640), secs(700), true);
    let excluded: Vec<u32> = partition
        .members
        .iter()
        .chain(outage.members.iter())
        .copied()
        .collect();
    let bystanders: Vec<u32> = (1..N as u32)
        .filter(|m| !excluded.contains(m))
        .take(2)
        .collect();
    let crashes = vec![
        CrashSpec {
            node: NodeIdx(bystanders[0]),
            at: secs(630),
            rejoin_after: Duration::from_secs(60),
        },
        CrashSpec {
            node: NodeIdx(bystanders[1]),
            at: secs(690),
            rejoin_after: Duration::from_secs(45),
        },
    ];
    let za = topo.router_of(NodeIdx(1)) as u32;
    let mut zb = topo.router_of(NodeIdx(2)) as u32;
    if zb == za {
        zb = topo.router_of(NodeIdx(3)) as u32;
    }
    FaultPlan {
        partitions: vec![partition],
        link_faults: vec![LinkFaultSpec {
            zone_a: za,
            zone_b: zb,
            from: secs(600),
            until: secs(720),
            extra_loss: 0.15,
            latency_mult: 3.0,
        }],
        crashes,
        outages: vec![outage],
        dup_rate: 0.02,
        reorder_window: Duration::from_millis(50),
    }
}

struct WorldSpec {
    seed: u64,
    layout: LayoutKind,
    scheduler: SchedulerKind,
    storm: Option<StormConfig>,
    chaos: bool,
}

fn world(spec: &WorldSpec) -> (SeaweedEngine, Seaweed<LiveTables>, Schema) {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(N);
    for node in 0..N {
        let mut t = Table::new(schema.clone());
        for r in 0..ROWS_PER_NODE {
            t.insert(vec![Value::Int(1), Value::Int((node + r) as i64 + 1)])
                .unwrap();
        }
        tables.push(t);
    }
    let topo = CorpNetTopology::with_params(N, ROUTERS, Duration::MILLISECOND, spec.seed);
    let faults = spec.chaos.then(|| chaos_plan(&topo));
    let eng: SeaweedEngine = Engine::new(
        Box::new(topo),
        SimConfig {
            seed: spec.seed,
            scheduler: spec.scheduler,
            loss_rate: if spec.chaos { 0.01 } else { 0.0 },
            faults,
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(N, spec.seed),
        OverlayConfig {
            seed: spec.seed,
            layout: spec.layout,
            ..Default::default()
        },
    );
    let sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed: spec.seed,
            storm: spec.storm.clone(),
            ..Default::default()
        },
    );
    (eng, sw, schema)
}

fn boot(eng: &mut SeaweedEngine) {
    for i in 0..N {
        eng.schedule_up(Time(1 + i as u64 * 300_000), NodeIdx(i as u32));
    }
}

fn drive(eng: &mut SeaweedEngine, sw: &mut Seaweed<LiveTables>, horizon: Time) {
    while let Some((_, ev)) = eng.next_event_before(horizon) {
        sw.dispatch(eng, ev);
    }
}

/// FNV-1a fingerprint over a compact per-event descriptor (ordering,
/// endpoints and timestamps pin the schedule bit-for-bit).
struct EventLog {
    hash: u64,
    len: u64,
}

impl EventLog {
    fn new() -> Self {
        EventLog {
            hash: 0xcbf2_9ce4_8422_2325,
            len: 0,
        }
    }

    fn add(&mut self, t: Time, ev: &Event<OverlayMsg<SeaweedMsg>>) {
        let desc = match *ev {
            Event::Message { from, to, .. } => format!("m:{}:{}:{}", t.as_micros(), from.0, to.0),
            Event::Timer { node, tag } => format!("t:{}:{}:{tag}", t.as_micros(), node.0),
            Event::NodeUp { node } => format!("u:{}:{}", t.as_micros(), node.0),
            Event::NodeDown { node } => format!("d:{}:{}", t.as_micros(), node.0),
            Event::NodeCrash { node } => format!("c:{}:{}", t.as_micros(), node.0),
            Event::PartitionStart { partition } => format!("ps:{}:{partition}", t.as_micros()),
            Event::PartitionEnd { partition } => format!("pe:{}:{partition}", t.as_micros()),
        };
        for b in desc.as_bytes() {
            self.hash ^= u64::from(*b);
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
        self.len += 1;
    }
}

struct ChaosRun {
    log_hash: u64,
    log_len: u64,
    rows: u64,
    violations: Vec<String>,
    report: String,
}

/// One full chaos run injecting a single query at T0. With
/// `storm: Some(..)` the query goes through `submit_query`; otherwise
/// through the baseline `inject_query`. Used for the K=1 byte-identity
/// bar.
fn run_chaos_single(spec: &WorldSpec) -> ChaosRun {
    let (mut eng, mut sw, schema) = world(spec);
    boot(&mut eng);
    let mut log = EventLog::new();
    let mut drive_logged =
        |eng: &mut SeaweedEngine, sw: &mut Seaweed<LiveTables>, horizon: Time| {
            while let Some((t, ev)) = eng.next_event_before(horizon) {
                log.add(t, &ev);
                sw.dispatch(eng, ev);
            }
        };
    drive_logged(&mut eng, &mut sw, Time(T0));
    assert_eq!(sw.overlay.num_joined(), N, "all join before the faults");

    let sql = "SELECT SUM(v) FROM T WHERE flag = 1";
    let ttl = Duration::from_hours(4);
    let h = if spec.storm.is_some() {
        match sw
            .submit_query(&mut eng, NodeIdx(0), sql, ttl, &schema)
            .unwrap()
        {
            Submission::Admitted(h) => h,
            Submission::Queued(t) => panic!("K=1 submission queued (ticket {t})"),
        }
    } else {
        sw.inject_query(&mut eng, NodeIdx(0), sql, ttl, &schema)
            .unwrap()
    };

    let oracle = ChaosOracle::new(TOTAL_ROWS);
    let mut violations = Vec::new();
    for t in [650, 720, 800, 1000, 1500] {
        drive_logged(&mut eng, &mut sw, secs(t));
        violations.extend(oracle.check(&sw, &eng));
    }

    ChaosRun {
        log_hash: log.hash,
        log_len: log.len,
        rows: sw.query(h).rows(),
        violations,
        report: format!("{:?}", eng.finish()),
    }
}

/// Tentpole gate: a 1-query storm takes the exact baseline code path —
/// event-for-event. Any divergence means storm mode perturbs the
/// uncontended protocol.
#[test]
fn k1_storm_is_byte_identical_to_baseline() {
    for seed in [3u64, 17] {
        for scheduler in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let base = run_chaos_single(&WorldSpec {
                seed,
                layout: LayoutKind::Arena,
                scheduler,
                storm: None,
                chaos: true,
            });
            let storm = run_chaos_single(&WorldSpec {
                seed,
                layout: LayoutKind::Arena,
                scheduler,
                storm: Some(StormConfig::default()),
                chaos: true,
            });
            assert!(base.violations.is_empty(), "{:?}", base.violations);
            assert!(storm.violations.is_empty(), "{:?}", storm.violations);
            assert_eq!(
                base.log_hash, storm.log_hash,
                "K=1 storm event log diverged from baseline (seed {seed}, {scheduler:?})"
            );
            assert_eq!(base.log_len, storm.log_len);
            assert_eq!(base.rows, storm.rows);
            assert_eq!(
                base.report, storm.report,
                "bandwidth reports diverged (seed {seed}, {scheduler:?})"
            );
        }
    }
}

/// Per-query distinct predicates that all match every row (one row per
/// endsystem with flag = 1), so the K queries have distinct identities
/// but identical ground truth.
fn storm_sql(i: usize) -> String {
    format!("SELECT SUM(v) FROM T WHERE flag < {}", 2 + i as i64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Fair-scheduling correctness: K queries run concurrently see
    /// exactly the rows each sees alone (same seed), across layouts and
    /// scheduler backends. The scan scheduler may interleave and batch
    /// work but must never lose or duplicate a contribution.
    #[test]
    fn concurrent_queries_match_solo_rows(seed in 0u64..10_000, k in 2usize..6) {
        for layout in [LayoutKind::Map, LayoutKind::Arena] {
            for scheduler in [SchedulerKind::Wheel, SchedulerKind::Heap] {
                let spec = WorldSpec {
                    seed,
                    layout,
                    scheduler,
                    storm: Some(StormConfig {
                        // Tight quanta so contended endsystems actually
                        // slice and share scans at this tiny scale.
                        quantum_rows: 1,
                        max_batch: 4,
                        ..StormConfig::default()
                    }),
                    chaos: false,
                };
                // Concurrent: all K injected back-to-back at T0.
                let (mut eng, mut sw, schema) = world(&spec);
                boot(&mut eng);
                drive(&mut eng, &mut sw, Time(T0));
                let mut handles = Vec::new();
                for i in 0..k {
                    let sub = sw
                        .submit_query(
                            &mut eng,
                            NodeIdx((i % N) as u32),
                            &storm_sql(i),
                            Duration::from_hours(4),
                            &schema,
                        )
                        .unwrap();
                    match sub {
                        Submission::Admitted(h) => handles.push(h),
                        Submission::Queued(t) => panic!("K<{k} under budget queued ({t})"),
                    }
                }
                drive(&mut eng, &mut sw, secs(1800));
                let oracle = ChaosOracle::new(TOTAL_ROWS);
                oracle.assert_clean(&sw, &eng);
                let together: Vec<u64> =
                    handles.iter().map(|&h| sw.query(h).rows()).collect();

                // Alone: each query in a fresh world, same seed.
                for (i, &rows_together) in together.iter().enumerate() {
                    let (mut eng, mut sw, schema) = world(&spec);
                    boot(&mut eng);
                    drive(&mut eng, &mut sw, Time(T0));
                    let Submission::Admitted(h) = sw
                        .submit_query(
                            &mut eng,
                            NodeIdx((i % N) as u32),
                            &storm_sql(i),
                            Duration::from_hours(4),
                            &schema,
                        )
                        .unwrap()
                    else {
                        panic!("solo submission queued")
                    };
                    drive(&mut eng, &mut sw, secs(1800));
                    prop_assert_eq!(
                        rows_together,
                        sw.query(h).rows(),
                        "query {} sees different rows under contention \
                         (seed {}, k {}, {:?}, {:?})",
                        i, seed, k, layout, scheduler
                    );
                }
            }
        }
    }
}

/// Chaos under storm pressure, 16 seeds: a burst of queries exceeding a
/// small in-flight budget (forcing queueing, slot recycling and
/// generation bumps mid-chaos) must stay oracle-clean, and each seed's
/// run must be bit-stable — the same fingerprint twice.
#[test]
fn sixteen_seed_chaos_storm_is_clean_and_stable() {
    for seed in 0u64..16 {
        let fingerprint = |seed: u64| -> (u64, u64, Vec<u64>) {
            let spec = WorldSpec {
                seed,
                layout: LayoutKind::Arena,
                scheduler: SchedulerKind::Wheel,
                storm: Some(StormConfig {
                    max_in_flight: 4,
                    quantum_rows: 1,
                    ..StormConfig::default()
                }),
                chaos: true,
            };
            let (mut eng, mut sw, schema) = world(&spec);
            boot(&mut eng);
            let mut log = EventLog::new();
            let mut drive_logged =
                |eng: &mut SeaweedEngine, sw: &mut Seaweed<LiveTables>, horizon: Time| {
                    while let Some((t, ev)) = eng.next_event_before(horizon) {
                        log.add(t, &ev);
                        sw.dispatch(eng, ev);
                    }
                };
            drive_logged(&mut eng, &mut sw, Time(T0));
            // 8 queries against a budget of 4: half park in the
            // admission queue; short TTLs force expiry → release →
            // admission churn across the fault windows.
            for i in 0..8 {
                let ttl = Duration::from_secs(120 + 60 * i as u64);
                sw.submit_query(&mut eng, NodeIdx(0), &storm_sql(i), ttl, &schema)
                    .unwrap();
            }
            let oracle = ChaosOracle::new(TOTAL_ROWS);
            for t in [650, 720, 800, 1000, 1500] {
                drive_logged(&mut eng, &mut sw, secs(t));
                let v = oracle.check(&sw, &eng);
                assert!(
                    v.is_empty(),
                    "oracle violations (seed {seed}, t {t}):\n  {}",
                    v.join("\n  ")
                );
            }
            let admitted: Vec<u64> = sw.drain_admissions().iter().map(|&(t, _)| t).collect();
            (log.hash, log.len, admitted)
        };
        let a = fingerprint(seed);
        let b = fingerprint(seed);
        assert_eq!(a, b, "chaos storm not bit-stable (seed {seed})");
    }
}

/// Satellite-1 regression: expire query A, let its slot recycle into
/// query B, then deliver a forged "delayed reply" still addressed to
/// A's old handle. The reply must be dropped at the message boundary
/// (`stale_handle_drops`), and B must be untouched.
#[test]
fn stale_reply_to_recycled_slot_is_dropped() {
    let spec = WorldSpec {
        seed: 11,
        layout: LayoutKind::Arena,
        scheduler: SchedulerKind::Wheel,
        storm: Some(StormConfig::default()),
        chaos: false,
    };
    let (mut eng, mut sw, schema) = world(&spec);
    boot(&mut eng);
    drive(&mut eng, &mut sw, Time(T0));

    // Query A: short TTL so it expires and releases its slot.
    let Submission::Admitted(h_a) = sw
        .submit_query(
            &mut eng,
            NodeIdx(0),
            "SELECT SUM(v) FROM T WHERE flag = 1",
            Duration::from_secs(120),
            &schema,
        )
        .unwrap()
    else {
        panic!("A queued")
    };
    drive(&mut eng, &mut sw, secs(900));
    assert_eq!(sw.storm_in_flight(), 0, "A must have expired and released");

    // Query B recycles A's slot under a bumped generation.
    let Submission::Admitted(h_b) = sw
        .submit_query(
            &mut eng,
            NodeIdx(0),
            "SELECT COUNT(*) FROM T WHERE flag = 1",
            Duration::from_hours(2),
            &schema,
        )
        .unwrap()
    else {
        panic!("B queued")
    };
    assert_ne!(h_a, h_b, "handles are never reused");
    drive(&mut eng, &mut sw, secs(1800));
    let rows_b = sw.query(h_b).rows();
    assert_eq!(rows_b, TOTAL_ROWS, "B converges before the stale delivery");
    let version_b = sw.query(h_b).latest_version;
    let drops_before = sw.stats.stale_handle_drops;

    // A's "delayed reply": a root-aggregate push carrying A's old
    // handle, a huge row count and a version far beyond B's. Without
    // generation checking this would overwrite B's result at the
    // origin.
    let mut agg = Aggregate::empty(AggFunc::Sum);
    for _ in 0..12_345 {
        agg.fold(1.0);
    }
    let forged = Event::Message {
        from: NodeIdx(1),
        to: NodeIdx(0),
        payload: Payload::Owned(OverlayMsg::App(SeaweedMsg::ResultToOrigin {
            query: h_a,
            agg,
            version: version_b + 1_000,
        })),
    };
    sw.dispatch(&mut eng, forged);

    assert_eq!(
        sw.stats.stale_handle_drops,
        drops_before + 1,
        "forged reply must be counted as a stale drop"
    );
    assert_eq!(sw.query(h_b).rows(), rows_b, "B's rows must be untouched");
    assert_eq!(
        sw.query(h_b).latest_version,
        version_b,
        "B's version must be untouched"
    );
    let oracle = ChaosOracle::new(TOTAL_ROWS);
    oracle.assert_clean(&sw, &eng);
}

/// Admission control mechanics without faults: a burst of 3× the budget
/// admits exactly `budget` immediately, parks the rest in ticket order,
/// and promotes them in order as retirements free slots.
#[test]
fn admission_queue_promotes_in_ticket_order() {
    let spec = WorldSpec {
        seed: 5,
        layout: LayoutKind::Map,
        scheduler: SchedulerKind::Wheel,
        storm: Some(StormConfig {
            max_in_flight: 2,
            ..StormConfig::default()
        }),
        chaos: false,
    };
    let (mut eng, mut sw, schema) = world(&spec);
    boot(&mut eng);
    drive(&mut eng, &mut sw, Time(T0));

    let mut admitted = Vec::new();
    let mut queued = Vec::new();
    for i in 0..6 {
        match sw
            .submit_query(
                &mut eng,
                NodeIdx(i as u32),
                &storm_sql(i),
                Duration::from_hours(4),
                &schema,
            )
            .unwrap()
        {
            Submission::Admitted(h) => admitted.push(h),
            Submission::Queued(t) => queued.push(t),
        }
    }
    assert_eq!(admitted.len(), 2, "budget admits exactly 2");
    assert_eq!(queued.len(), 4);
    assert!(queued.windows(2).all(|w| w[0] < w[1]), "tickets ascend");
    assert_eq!(sw.storm_queue_len(), 4);
    assert_eq!(sw.stats.storm_admitted, 2);
    assert_eq!(sw.stats.storm_queued, 4);

    // Let the two in-flight queries finish, then retire them: the queue
    // must drain in ticket order, two at a time.
    drive(&mut eng, &mut sw, secs(1200));
    for &h in &admitted {
        assert_eq!(sw.query(h).rows(), TOTAL_ROWS);
        sw.retire_query(&mut eng, h);
    }
    let promoted = sw.drain_admissions();
    assert_eq!(promoted.len(), 2, "two freed slots admit two tickets");
    assert_eq!(promoted[0].0, queued[0]);
    assert_eq!(promoted[1].0, queued[1]);
    assert_eq!(sw.storm_queue_len(), 2);

    drive(&mut eng, &mut sw, secs(2400));
    for &(_, h) in &promoted {
        assert_eq!(sw.query(h).rows(), TOTAL_ROWS, "promoted queries converge");
        sw.retire_query(&mut eng, h);
    }
    let rest = sw.drain_admissions();
    assert_eq!(rest.len(), 2);
    assert_eq!(rest[0].0, queued[2]);
    assert_eq!(rest[1].0, queued[3]);
    drive(&mut eng, &mut sw, secs(3600));
    for &(_, h) in &rest {
        assert_eq!(sw.query(h).rows(), TOTAL_ROWS);
    }
    let oracle = ChaosOracle::new(TOTAL_ROWS);
    oracle.assert_clean(&sw, &eng);
}
