//! Pins `SelectionKind::IdOrder` (with hedging off) byte-identical to
//! the pre-hedging protocol.
//!
//! The tail-tolerance PR threads replica selection and hedging hooks
//! through the dissemination hot path. `IdOrder` with `hedge: None` is
//! the documented equivalence baseline: the full chaos-plan event log
//! (every message, timer fire, lifecycle and partition event, in order)
//! and the engine's `BandwidthReport` must match the fingerprints
//! captured on the commit *before* the hooks existed — and must stay
//! identical across both schedulers and both hot-state layouts.

use proptest::prelude::*;
use seaweed_core::{ChaosOracle, LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{LayoutKind, Overlay, OverlayConfig, SelectionKind};
use seaweed_sim::{
    CorpNetTopology, CrashSpec, Engine, Event, FaultPlan, LinkFaultSpec, NodeIdx, OutageSpec,
    PartitionSpec, SchedulerKind, SimConfig,
};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

const N: usize = 36;
const ROUTERS: usize = 24;
const T0: u64 = 600_000_000;

/// Fingerprints captured on the pre-hedging commit (same harness, same
/// seeds, identical across all four scheduler × layout combinations):
/// `(seed, log_hash, log_len, rows, report_hash)`.
const GOLDENS: [(u64, u64, u64, u64, u64); 3] = [
    (7, 0x9ebd_982a_ec0c_f660, 6096, 36, 0xbaea_e313_3c4c_8013),
    (11, 0x7fda_8683_716a_b886, 5776, 36, 0xc341_d795_713c_1959),
    (42, 0x125f_a26f_3e0b_1728, 5822, 36, 0xff09_8794_8e10_b2de),
];

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// The full chaos plan from `chaos.rs`: regional partition, correlated
/// branch outage with amnesia, two bystander crashes, a degraded link,
/// duplication and reordering — everything the selection hook must not
/// perturb.
fn chaos_plan(topo: &CorpNetTopology) -> FaultPlan {
    let regional = (topo.num_core()..topo.num_core() + topo.num_regional())
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .unwrap();
    let partition = PartitionSpec::from_router_cut(topo, regional, secs(602), secs(780));
    let branch = topo
        .branch_routers()
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .unwrap();
    let outage = OutageSpec::branch_outage(topo, branch, secs(640), secs(700), true);
    let excluded: Vec<u32> = partition
        .members
        .iter()
        .chain(outage.members.iter())
        .copied()
        .collect();
    let bystanders: Vec<u32> = (1..N as u32)
        .filter(|m| !excluded.contains(m))
        .take(2)
        .collect();
    let crashes = vec![
        CrashSpec {
            node: NodeIdx(bystanders[0]),
            at: secs(630),
            rejoin_after: Duration::from_secs(60),
        },
        CrashSpec {
            node: NodeIdx(bystanders[1]),
            at: secs(690),
            rejoin_after: Duration::from_secs(45),
        },
    ];
    let za = topo.router_of(NodeIdx(1)) as u32;
    let mut zb = topo.router_of(NodeIdx(2)) as u32;
    if zb == za {
        zb = topo.router_of(NodeIdx(3)) as u32;
    }
    FaultPlan {
        partitions: vec![partition],
        link_faults: vec![LinkFaultSpec {
            zone_a: za,
            zone_b: zb,
            from: secs(600),
            until: secs(720),
            extra_loss: 0.15,
            latency_mult: 3.0,
        }],
        crashes,
        outages: vec![outage],
        dup_rate: 0.02,
        reorder_window: Duration::from_millis(50),
    }
}

fn fnv(hash: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *hash ^= u64::from(*b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

/// Runs the chaos scenario and returns `(log_hash, log_len, rows,
/// report_hash)` — the same fingerprint the goldens were captured with.
fn run(seed: u64, layout: LayoutKind, scheduler: SchedulerKind) -> (u64, u64, u64, u64) {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(N);
    for node in 0..N {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .unwrap();
        tables.push(t);
    }
    let topo = CorpNetTopology::with_params(N, ROUTERS, Duration::MILLISECOND, seed);
    let plan = chaos_plan(&topo);
    let mut eng: SeaweedEngine = Engine::new(
        Box::new(topo),
        SimConfig {
            seed,
            scheduler,
            loss_rate: 0.01,
            faults: Some(plan),
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(N, seed),
        OverlayConfig {
            seed,
            layout,
            // Explicit, not via Default: the equivalence claim is about
            // this variant, whatever the default becomes later.
            selection: SelectionKind::IdOrder,
            ..Default::default()
        },
    );
    let mut sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed,
            hedge: None,
            ..Default::default()
        },
    );
    for i in 0..N {
        eng.schedule_up(Time(1 + i as u64 * 300_000), NodeIdx(i as u32));
    }
    let mut log_hash = 0xcbf2_9ce4_8422_2325u64;
    let mut log_len = 0u64;
    let mut drive = |eng: &mut SeaweedEngine, sw: &mut Seaweed<LiveTables>, horizon: Time| {
        while let Some((t, ev)) = eng.next_event_before(horizon) {
            let desc = match ev {
                Event::Message { from, to, .. } => {
                    format!("m:{}:{}:{}", t.as_micros(), from.0, to.0)
                }
                Event::Timer { node, tag } => format!("t:{}:{}:{tag}", t.as_micros(), node.0),
                Event::NodeUp { node } => format!("u:{}:{}", t.as_micros(), node.0),
                Event::NodeDown { node } => format!("d:{}:{}", t.as_micros(), node.0),
                Event::NodeCrash { node } => format!("c:{}:{}", t.as_micros(), node.0),
                Event::PartitionStart { partition } => format!("ps:{}:{partition}", t.as_micros()),
                Event::PartitionEnd { partition } => format!("pe:{}:{partition}", t.as_micros()),
            };
            fnv(&mut log_hash, desc.as_bytes());
            log_len += 1;
            sw.dispatch(eng, ev);
        }
    };
    drive(&mut eng, &mut sw, Time(T0));
    assert_eq!(sw.overlay.num_joined(), N);
    sw.inject_query(
        &mut eng,
        NodeIdx(0),
        "SELECT SUM(v) FROM T WHERE flag = 1",
        Duration::from_hours(4),
        &schema,
    )
    .unwrap();
    let oracle = ChaosOracle::new(N as u64);
    for t in [650, 720, 800, 1000, 1500] {
        drive(&mut eng, &mut sw, secs(t));
        oracle.assert_clean(&sw, &eng);
    }
    // With hedging off, the tail-tolerance machinery must be fully
    // inert: no hedges, no wasted bytes (also oracle-enforced).
    assert_eq!(sw.stats.hedges_sent, 0);
    assert_eq!(sw.stats.hedge_wasted_bytes, 0);
    let rows = sw.query(0).rows();
    let report = format!("{:?}", eng.finish());
    let mut report_hash = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut report_hash, report.as_bytes());
    (log_hash, log_len, rows, report_hash)
}

/// The hard pin: every scheduler × layout combination reproduces the
/// pre-hedging fingerprints exactly.
#[test]
fn id_order_matches_pre_hedging_goldens() {
    for (seed, log_hash, log_len, rows, report_hash) in GOLDENS {
        for scheduler in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            for layout in [LayoutKind::Map, LayoutKind::Arena] {
                let got = run(seed, layout, scheduler);
                assert_eq!(
                    got,
                    (log_hash, log_len, rows, report_hash),
                    "seed {seed} {scheduler:?} {layout:?} diverged from the pre-hedging baseline"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary seeds: all four scheduler × layout combinations agree
    /// on the full event-log and bandwidth-report fingerprints under
    /// `IdOrder`, so the selection hook cannot have introduced a
    /// combo-dependent divergence anywhere.
    #[test]
    fn id_order_identical_across_schedulers_and_layouts(seed in 0u64..10_000) {
        let baseline = run(seed, LayoutKind::Map, SchedulerKind::Wheel);
        for scheduler in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            for layout in [LayoutKind::Map, LayoutKind::Arena] {
                if (scheduler, layout) == (SchedulerKind::Wheel, LayoutKind::Map) {
                    continue;
                }
                prop_assert_eq!(
                    run(seed, layout, scheduler),
                    baseline,
                    "seed {} {:?} {:?} diverged",
                    seed,
                    scheduler,
                    layout
                );
            }
        }
    }
}
