//! Chaos testing with hedged dissemination ON.
//!
//! The equivalence tests pin hedging-off to the old byte stream; this
//! file turns the tail-tolerance machinery on (hedged requests +
//! availability-aware replica selection) under the full chaos plan and
//! checks the properties that must survive it: every oracle invariant
//! (including exactly-once and the new timer-hygiene/hedge-accounting
//! checks), deterministic replay, and sane hedge bookkeeping.

use proptest::prelude::*;
use seaweed_core::{ChaosOracle, HedgeConfig, LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{LayoutKind, Overlay, OverlayConfig, SelectionKind};
use seaweed_sim::{
    CorpNetTopology, CrashSpec, Engine, Event, FaultPlan, LinkFaultSpec, NodeIdx, OutageSpec,
    PartitionSpec, SchedulerKind, SimConfig,
};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

const N: usize = 36;
const ROUTERS: usize = 24;
const T0: u64 = 600_000_000;

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// Same fault schedule as `chaos.rs` / `selection_equivalence.rs`.
fn chaos_plan(topo: &CorpNetTopology) -> FaultPlan {
    let regional = (topo.num_core()..topo.num_core() + topo.num_regional())
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .unwrap();
    let partition = PartitionSpec::from_router_cut(topo, regional, secs(602), secs(780));
    let branch = topo
        .branch_routers()
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .unwrap();
    let outage = OutageSpec::branch_outage(topo, branch, secs(640), secs(700), true);
    let excluded: Vec<u32> = partition
        .members
        .iter()
        .chain(outage.members.iter())
        .copied()
        .collect();
    let bystanders: Vec<u32> = (1..N as u32)
        .filter(|m| !excluded.contains(m))
        .take(2)
        .collect();
    let crashes = vec![
        CrashSpec {
            node: NodeIdx(bystanders[0]),
            at: secs(630),
            rejoin_after: Duration::from_secs(60),
        },
        CrashSpec {
            node: NodeIdx(bystanders[1]),
            at: secs(690),
            rejoin_after: Duration::from_secs(45),
        },
    ];
    let za = topo.router_of(NodeIdx(1)) as u32;
    let mut zb = topo.router_of(NodeIdx(2)) as u32;
    if zb == za {
        zb = topo.router_of(NodeIdx(3)) as u32;
    }
    FaultPlan {
        partitions: vec![partition],
        link_faults: vec![LinkFaultSpec {
            zone_a: za,
            zone_b: zb,
            from: secs(600),
            until: secs(720),
            extra_loss: 0.15,
            latency_mult: 3.0,
        }],
        crashes,
        outages: vec![outage],
        dup_rate: 0.02,
        reorder_window: Duration::from_millis(50),
    }
}

fn fnv(hash: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *hash ^= u64::from(*b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

struct RunResult {
    log_hash: u64,
    log_len: u64,
    rows: u64,
    hedges_sent: u64,
    hedge_wins: u64,
    hedge_losses: u64,
    hedge_wasted_bytes: u64,
    give_ups: u64,
}

fn run_hedged(seed: u64, layout: LayoutKind, scheduler: SchedulerKind) -> RunResult {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(N);
    for node in 0..N {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .unwrap();
        tables.push(t);
    }
    let topo = CorpNetTopology::with_params(N, ROUTERS, Duration::MILLISECOND, seed);
    let plan = chaos_plan(&topo);
    let mut eng: SeaweedEngine = Engine::new(
        Box::new(topo),
        SimConfig {
            seed,
            scheduler,
            loss_rate: 0.01,
            faults: Some(plan),
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(N, seed),
        OverlayConfig {
            seed,
            layout,
            selection: SelectionKind::AvailAware,
            ..Default::default()
        },
    );
    let mut sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed,
            hedge: Some(HedgeConfig::default()),
            ..Default::default()
        },
    );
    for i in 0..N {
        eng.schedule_up(Time(1 + i as u64 * 300_000), NodeIdx(i as u32));
    }
    let mut log_hash = 0xcbf2_9ce4_8422_2325u64;
    let mut log_len = 0u64;
    let mut drive = |eng: &mut SeaweedEngine, sw: &mut Seaweed<LiveTables>, horizon: Time| {
        while let Some((t, ev)) = eng.next_event_before(horizon) {
            let desc = match ev {
                Event::Message { from, to, .. } => {
                    format!("m:{}:{}:{}", t.as_micros(), from.0, to.0)
                }
                Event::Timer { node, tag } => format!("t:{}:{}:{tag}", t.as_micros(), node.0),
                Event::NodeUp { node } => format!("u:{}:{}", t.as_micros(), node.0),
                Event::NodeDown { node } => format!("d:{}:{}", t.as_micros(), node.0),
                Event::NodeCrash { node } => format!("c:{}:{}", t.as_micros(), node.0),
                Event::PartitionStart { partition } => format!("ps:{}:{partition}", t.as_micros()),
                Event::PartitionEnd { partition } => format!("pe:{}:{partition}", t.as_micros()),
            };
            fnv(&mut log_hash, desc.as_bytes());
            log_len += 1;
            sw.dispatch(eng, ev);
        }
    };
    drive(&mut eng, &mut sw, Time(T0));
    assert_eq!(sw.overlay.num_joined(), N);
    sw.inject_query(
        &mut eng,
        NodeIdx(0),
        "SELECT SUM(v) FROM T WHERE flag = 1",
        Duration::from_hours(4),
        &schema,
    )
    .unwrap();
    // Checkpoints straddle the outage, the heal and the long tail; the
    // oracle (exactly-once, monotone progress, orphan-freedom, timer
    // hygiene, hedge accounting) must hold at every one.
    let oracle = ChaosOracle::new(N as u64);
    for t in [650, 720, 800, 1000, 1500] {
        drive(&mut eng, &mut sw, secs(t));
        oracle.assert_clean(&sw, &eng);
    }
    RunResult {
        log_hash,
        log_len,
        rows: sw.query(0).rows(),
        hedges_sent: sw.stats.hedges_sent,
        hedge_wins: sw.stats.hedge_wins,
        hedge_losses: sw.stats.hedge_losses,
        hedge_wasted_bytes: sw.stats.hedge_wasted_bytes,
        give_ups: sw.stats.dissem_give_ups,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// 32 arbitrary seeds with hedging on: oracle-clean at every
    /// checkpoint (asserted inside `run_hedged`), exactly-once holds
    /// (rows never exceed the population — every hedge duplicate must
    /// be deduped somewhere), the hedge ledger is consistent, and the
    /// run replays bit-identically under the same seed.
    #[test]
    fn hedged_chaos_is_oracle_clean_and_deterministic(seed in 0u64..10_000) {
        let a = run_hedged(seed, LayoutKind::Arena, SchedulerKind::Wheel);
        prop_assert!(a.rows <= N as u64, "exactly-once violated: {} rows", a.rows);
        prop_assert!(
            a.rows * 2 >= N as u64,
            "hedged run lost most of the population: {} rows",
            a.rows
        );
        prop_assert!(
            a.hedge_wins + a.hedge_losses <= a.hedges_sent,
            "hedge ledger inconsistent: {} + {} > {}",
            a.hedge_wins, a.hedge_losses, a.hedges_sent
        );
        if a.hedges_sent == 0 {
            prop_assert_eq!(a.hedge_wasted_bytes, 0);
        }
        let b = run_hedged(seed, LayoutKind::Arena, SchedulerKind::Wheel);
        prop_assert_eq!(a.log_hash, b.log_hash, "same-seed replay diverged");
        prop_assert_eq!(a.log_len, b.log_len);
        prop_assert_eq!(a.rows, b.rows);
        prop_assert_eq!(a.hedges_sent, b.hedges_sent);
    }
}

/// A pinned seed where the chaos plan actually provokes hedges, so the
/// machinery is known-exercised (the proptest above would also pass on
/// seeds where every reply beats the hedge delay). Also checks both
/// hot-state layouts agree with hedging on.
#[test]
fn hedges_fire_under_chaos_and_layouts_agree() {
    let map = run_hedged(7, LayoutKind::Map, SchedulerKind::Wheel);
    let arena = run_hedged(7, LayoutKind::Arena, SchedulerKind::Wheel);
    assert!(
        map.hedges_sent > 0,
        "seed 7 chaos plan provoked no hedges — the machinery never ran"
    );
    assert_eq!(
        map.log_hash, arena.log_hash,
        "layouts diverged with hedging on"
    );
    assert_eq!(map.log_len, arena.log_len);
    assert_eq!(map.rows, arena.rows);
    assert_eq!(map.hedges_sent, arena.hedges_sent);
    assert_eq!(map.hedge_wins, arena.hedge_wins);
    assert_eq!(map.hedge_losses, arena.hedge_losses);
    assert_eq!(map.give_ups, arena.give_ups);
}
