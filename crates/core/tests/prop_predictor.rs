//! Property-based tests for completeness predictors and the vertex
//! parent function.

use proptest::prelude::*;
use seaweed_availability::ReturnPrediction;
use seaweed_core::predictor::Predictor;
use seaweed_core::vertex::{chain_to_root, parent_vertex, suffix_len};
use seaweed_types::{Duration, Id};

fn predictions() -> impl Strategy<Value = Vec<(f64, u64)>> {
    // (rows, delay seconds) pairs for unavailable endsystems.
    prop::collection::vec((0.0f64..1e6, 1u64..1_000_000), 0..40)
}

fn build(avail: &[f64], unavail: &[(f64, u64)]) -> Predictor {
    let mut p = Predictor::new();
    for &rows in avail {
        p.add_available(rows);
    }
    for &(rows, delay) in unavail {
        p.add_unavailable(rows, &ReturnPrediction::point(Duration::from_secs(delay)));
    }
    p
}

proptest! {
    /// Total rows equals the sum of all contributions; immediate rows
    /// equal the available ones; the curve is monotone and bounded.
    #[test]
    fn predictor_accounting(
        avail in prop::collection::vec(0.0f64..1e6, 0..40),
        unavail in predictions(),
    ) {
        let p = build(&avail, &unavail);
        let expect_avail: f64 = avail.iter().sum();
        let expect_total: f64 = expect_avail + unavail.iter().map(|(r, _)| r).sum::<f64>();
        prop_assert!((p.immediate_rows() - expect_avail).abs() < 1e-6 * expect_avail.max(1.0));
        prop_assert!((p.total_rows() - expect_total).abs() < 1e-6 * expect_total.max(1.0));
        prop_assert_eq!(p.endsystems(), (avail.len() + unavail.len()) as u64);

        let mut last = -1.0;
        for d in [0u64, 1, 60, 3600, 86_400, 14 * 86_400, 100 * 86_400] {
            let c = p.completeness_at(Duration::from_secs(d));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
            prop_assert!(c + 1e-9 >= last, "completeness regressed at {d}s");
            last = c;
        }
        // Everything has arrived after the bucket horizon.
        prop_assert!(p.completeness_at(Duration::from_days(60)) > 1.0 - 1e-9);
    }

    /// Merging in any grouping/order produces the same predictor.
    #[test]
    fn merge_order_insensitive(
        a in prop::collection::vec(0.0f64..1e5, 0..10),
        b in predictions(),
        c in predictions(),
    ) {
        let pa = build(&a, &[]);
        let pb = build(&[], &b);
        let pc = build(&[], &c);
        let mut left = pa.clone();
        left.merge(&pb);
        left.merge(&pc);
        let mut right = pc.clone();
        right.merge(&pa);
        right.merge(&pb);
        prop_assert_eq!(left, right);
    }

    /// delay_for_completeness is the inverse of completeness_at.
    #[test]
    fn delay_inverts_completeness(unavail in predictions(), target in 0.0f64..1.0) {
        let p = build(&[1.0], &unavail);
        if let Some(d) = p.delay_for_completeness(target) {
            // At the returned delay (bucket midpoint), the requested
            // completeness is reached.
            prop_assert!(p.completeness_at(d) + 1e-9 >= target);
        }
    }

    /// The parent function converges to the query id from any start, in
    /// at most num_digits steps, with strictly growing shared suffix —
    /// for every digit width.
    #[test]
    fn vertex_chain_properties(
        q in any::<u128>(),
        start in any::<u128>(),
        b in prop::sample::select(vec![1u8, 2, 4, 8]),
    ) {
        let (q, start) = (Id(q), Id(start));
        let chain = chain_to_root(q, start, b);
        prop_assert!(chain.len() <= Id::num_digits(b));
        if start == q {
            prop_assert!(chain.is_empty());
        } else {
            prop_assert_eq!(*chain.last().unwrap(), q);
            let mut prev = suffix_len(q, start, b);
            for v in &chain {
                let s = suffix_len(q, *v, b);
                prop_assert!(s > prev || *v == q);
                prev = s;
            }
        }
        // Parent is deterministic.
        prop_assert_eq!(parent_vertex(q, start, b), parent_vertex(q, start, b));
    }

    /// Siblings under the same parent share their trailing digits: the
    /// parent of any vertex agrees with the query on one more trailing
    /// digit than the vertex did.
    #[test]
    fn parent_extends_suffix_by_at_least_one(q in any::<u128>(), v in any::<u128>()) {
        prop_assume!(q != v);
        let (q, v) = (Id(q), Id(v));
        let p = parent_vertex(q, v, 4).unwrap();
        prop_assert!(suffix_len(q, p, 4) > suffix_len(q, v, 4));
    }
}
