//! Replicated views — §3.2.2's selective replication: "One could imagine
//! an application designer specifying any subset of the data (e.g.
//! projection) or derived values (e.g. views) for replication. Queries on
//! the replicated portion alone would be answered with relatively low
//! latency, albeit with some staleness."

use seaweed_core::{LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig};
use seaweed_sim::{Engine, NodeIdx, SimConfig, UniformTopology};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

fn world(n: usize, seed: u64) -> (SeaweedEngine, Seaweed<LiveTables>, Schema) {
    let schema = Schema::new(
        "Stats",
        vec![
            ColumnDef::new("kind", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(n);
    for node in 0..n {
        let mut t = Table::new(schema.clone());
        // One row of kind 1 carrying node+1, plus noise.
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .unwrap();
        t.insert(vec![Value::Int(0), Value::Int(999)]).unwrap();
        tables.push(t);
    }
    let provider = LiveTables::new(tables);
    let eng: SeaweedEngine = Engine::new(
        Box::new(UniformTopology::new(n, Duration::from_millis(5))),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    let sw = Seaweed::new(
        overlay,
        provider,
        SeaweedConfig {
            seed,
            ..Default::default()
        },
    );
    (eng, sw, schema)
}

const VIEW_SQL: &str = "SELECT SUM(v) FROM Stats WHERE kind = 1";

#[test]
fn view_query_covers_entire_population_including_the_dead() {
    let n = 30;
    let (mut eng, mut sw, schema) = world(n, 1);
    let view = sw.register_view(VIEW_SQL, &schema).unwrap();
    for i in 0..n {
        eng.schedule_up(Time::from_micros(1 + i as u64 * 500_000), NodeIdx(i as u32));
    }
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(10));

    // Take a third of the endsystems down and let detection finish.
    let t0 = eng.now();
    for i in 0..n / 3 {
        eng.schedule_down(
            t0 + Duration::from_secs(i as u64 + 1),
            NodeIdx((i * 3) as u32),
        );
    }
    sw.run_until(&mut eng, t0 + Duration::from_mins(10));
    assert_eq!(eng.num_up(), n - n / 3);

    // The view query answers for *everyone*, dead included, in seconds.
    let origin = NodeIdx((n - 1) as u32);
    let injected = eng.now();
    let h = sw.query_view(&mut eng, origin, view, Duration::from_hours(1));
    let hz = eng.now() + Duration::from_mins(1);
    sw.run_until(&mut eng, hz);

    let q = sw.query(h);
    let agg = q.latest.expect("view answer arrives");
    let expected: f64 = (1..=n as i64).map(|v| v as f64).sum();
    assert_eq!(
        agg.finish(),
        Some(expected),
        "must include stale values of dead endsystems"
    );
    assert_eq!(agg.rows, n as u64);
    // Low latency: seconds, not hours.
    let latency = q.predictor_at.expect("answer timestamped").since(injected);
    assert!(latency < Duration::from_secs(30), "latency {latency}");
}

#[test]
fn view_values_refresh_with_pushes_and_cost_is_charged() {
    let n = 12;
    let (mut eng, mut sw, schema) = world(n, 2);
    let view = sw.register_view(VIEW_SQL, &schema).unwrap();
    for i in 0..n {
        eng.schedule_up(Time::from_micros(1 + i as u64), NodeIdx(i as u32));
    }
    sw.run_until(&mut eng, Time::ZERO + Duration::from_hours(1));
    let pushes = sw.stats.meta_pushes;
    assert!(pushes > 0);

    // All alive: the view answer equals a fresh computation.
    let h = sw.query_view(&mut eng, NodeIdx(0), view, Duration::from_mins(30));
    let hz = eng.now() + Duration::from_mins(1);
    sw.run_until(&mut eng, hz);
    let expected: f64 = (1..=n as i64).map(|v| v as f64).sum();
    assert_eq!(sw.query(h).latest.unwrap().finish(), Some(expected));
}

#[test]
fn multiple_views_coexist() {
    let n = 15;
    let (mut eng, mut sw, schema) = world(n, 3);
    let v_sum = sw.register_view(VIEW_SQL, &schema).unwrap();
    let v_max = sw
        .register_view("SELECT MAX(v) FROM Stats WHERE kind = 1", &schema)
        .unwrap();
    let v_cnt = sw
        .register_view("SELECT COUNT(*) FROM Stats", &schema)
        .unwrap();
    for i in 0..n {
        eng.schedule_up(Time::from_micros(1 + i as u64 * 100_000), NodeIdx(i as u32));
    }
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(10));

    let origin = NodeIdx(2);
    let h_sum = sw.query_view(&mut eng, origin, v_sum, Duration::from_mins(30));
    let h_max = sw.query_view(&mut eng, origin, v_max, Duration::from_mins(30));
    let h_cnt = sw.query_view(&mut eng, origin, v_cnt, Duration::from_mins(30));
    let hz = eng.now() + Duration::from_mins(2);
    sw.run_until(&mut eng, hz);

    let expected_sum: f64 = (1..=n as i64).map(|v| v as f64).sum();
    assert_eq!(sw.query(h_sum).latest.unwrap().finish(), Some(expected_sum));
    assert_eq!(sw.query(h_max).latest.unwrap().finish(), Some(n as f64));
    assert_eq!(
        sw.query(h_cnt).latest.unwrap().finish(),
        Some(2.0 * n as f64)
    );
}

#[test]
fn unregistered_view_panics() {
    let n = 5;
    let (mut eng, mut sw, _schema) = world(n, 4);
    for i in 0..n {
        eng.schedule_up(Time::from_micros(1 + i as u64), NodeIdx(i as u32));
    }
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(5));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = sw.query_view(&mut eng, NodeIdx(0), 7, Duration::from_mins(1));
    }));
    assert!(result.is_err());
}
