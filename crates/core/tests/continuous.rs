//! Continuous queries — the §3.4 extension ("The same protocol can be
//! extended easily to support continuous queries in a failure-resilient
//! manner").
//!
//! Endsystems hold timestamped rows; a continuous COUNT over a sliding
//! `NOW()` window must change across epochs as the window moves, keep
//! counting each endsystem exactly once per epoch, and survive churn.

use seaweed_core::{LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig};
use seaweed_sim::{Engine, NodeIdx, SimConfig, UniformTopology};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

/// Each endsystem has one event per minute for the first `E` minutes of
/// the simulation, so a sliding 10-minute window over `ts` counts
/// 10 × live endsystems while events are fresh and decays afterwards.
fn tables(n: usize, minutes: i64) -> LiveTables {
    let schema = Schema::new(
        "Events",
        vec![
            ColumnDef::new("ts", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut out = Vec::with_capacity(n);
    for node in 0..n {
        let mut t = Table::new(schema.clone());
        for m in 0..minutes {
            t.insert(vec![Value::Int(m * 60), Value::Int(node as i64)])
                .unwrap();
        }
        out.push(t);
    }
    LiveTables::new(out)
}

fn world(n: usize, seed: u64, minutes: i64) -> (SeaweedEngine, Seaweed<LiveTables>, Schema) {
    let eng: SeaweedEngine = Engine::new(
        Box::new(UniformTopology::new(n, Duration::from_millis(5))),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    let provider = tables(n, minutes);
    let schema = provider.schema().clone();
    let sw = Seaweed::new(
        overlay,
        provider,
        SeaweedConfig {
            seed,
            ..Default::default()
        },
    );
    (eng, sw, schema)
}

fn settle(eng: &mut SeaweedEngine, sw: &mut Seaweed<LiveTables>, n: usize) {
    for i in 0..n {
        eng.schedule_up(Time::from_micros(1 + i as u64 * 500_000), NodeIdx(i as u32));
    }
    sw.run_until(eng, Time::ZERO + Duration::from_mins(5));
}

const WINDOW: &str = "SELECT COUNT(*) FROM Events WHERE ts >= NOW() - 600 AND ts <= NOW()";

#[test]
fn sliding_window_rolls_forward() {
    let n = 20;
    // Events cover the first 60 minutes.
    let (mut eng, mut sw, schema) = world(n, 1, 60);
    settle(&mut eng, &mut sw, n);

    let h = sw
        .inject_continuous_query(
            &mut eng,
            NodeIdx(0),
            WINDOW,
            Duration::from_mins(2),
            Duration::from_hours(3),
            &schema,
        )
        .unwrap();

    // Mid-stream (t ≈ 30 min): the 10-minute window holds 10-11 events
    // per endsystem.
    let hz = Time::ZERO + Duration::from_mins(30);
    sw.run_until(&mut eng, hz);
    let q = sw.query(h);
    let mid = q.latest.unwrap().finish().unwrap();
    let per_node_mid = mid / n as f64;
    assert!(
        (10.0..=11.5).contains(&per_node_mid),
        "mid-stream count/node = {per_node_mid}"
    );

    // After the events stop (t = 60 min) the window drains: by t = 75 min
    // the count must be zero.
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(76));
    let q = sw.query(h);
    assert_eq!(
        q.latest.unwrap().finish(),
        Some(0.0),
        "window should have drained"
    );
    // The origin observed the rise-then-fall shape.
    let max_rows = q.progress.iter().map(|&(_, r, _)| r).max().unwrap();
    assert!(max_rows >= (n * 10) as u64, "peak {max_rows}");
}

#[test]
fn epochs_count_each_endsystem_exactly_once() {
    let n = 15;
    let (mut eng, mut sw, schema) = world(n, 2, 120);
    settle(&mut eng, &mut sw, n);
    let h = sw
        .inject_continuous_query(
            &mut eng,
            NodeIdx(3),
            WINDOW,
            Duration::from_mins(2),
            Duration::from_hours(2),
            &schema,
        )
        .unwrap();
    // Sample several epochs: rows must always be a multiple-ish of the
    // population (each node contributes its window count once; counts
    // differ by at most one event between nodes since data is aligned).
    for minutes in [10u64, 20, 40, 60] {
        sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(minutes));
        let q = sw.query(h);
        let agg = q.latest.expect("updates flowing");
        // All endsystems contribute every epoch: per-node counts in a
        // sliding 10-min window are 10 or 11 depending on phase.
        let per_node = agg.finish().unwrap() / n as f64;
        assert!(
            (9.9..=11.1).contains(&per_node),
            "at {minutes} min: per-node {per_node} (duplicated or lost epochs?)"
        );
    }
}

#[test]
fn continuous_query_survives_churn() {
    let n = 20;
    let (mut eng, mut sw, schema) = world(n, 3, 240);
    settle(&mut eng, &mut sw, n);
    let h = sw
        .inject_continuous_query(
            &mut eng,
            NodeIdx(1),
            WINDOW,
            Duration::from_mins(2),
            Duration::from_hours(4),
            &schema,
        )
        .unwrap();
    let t0 = eng.now();
    // Bounce a third of the endsystems mid-stream.
    for i in 0..n / 3 {
        let node = NodeIdx((i * 3 + 2) as u32);
        eng.schedule_down(t0 + Duration::from_mins(5 + i as u64), node);
        eng.schedule_up(t0 + Duration::from_mins(25 + i as u64), node);
    }
    sw.run_until(&mut eng, t0 + Duration::from_mins(90));
    let q = sw.query(h);
    assert!(q.active);
    let per_node = q.latest.unwrap().finish().unwrap() / n as f64;
    // After everyone is back and a few epochs have passed, the rolling
    // count covers the full population again.
    assert!(
        (9.9..=11.1).contains(&per_node),
        "per-node {per_node} after churn (rejoined endsystems must resume epochs)"
    );
}

#[test]
fn local_updates_flow_into_continuous_results() {
    // The paper's workload is "frequent local updates and relatively
    // infrequent global one-shot queries": rows inserted at an endsystem
    // mid-flight must show up in subsequent epochs.
    let n = 12;
    let (mut eng, mut sw, schema) = world(n, 9, 0); // no pre-existing events
    settle(&mut eng, &mut sw, n);
    let h = sw
        .inject_continuous_query(
            &mut eng,
            NodeIdx(0),
            "SELECT COUNT(*) FROM Events WHERE v >= 0",
            Duration::from_mins(2),
            Duration::from_hours(2),
            &schema,
        )
        .unwrap();
    let hz = eng.now() + Duration::from_mins(5);
    sw.run_until(&mut eng, hz);
    assert_eq!(sw.query(h).latest.unwrap().finish(), Some(0.0));

    // Insert rows locally at three endsystems and refresh their summaries.
    for node in [2usize, 5, 7] {
        for i in 0..4i64 {
            sw.provider
                .table_mut(node)
                .insert(vec![Value::Int(i * 60), Value::Int(node as i64)])
                .unwrap();
        }
        sw.provider.refresh_summary(node);
    }
    let hz = eng.now() + Duration::from_mins(10);
    sw.run_until(&mut eng, hz);
    assert_eq!(
        sw.query(h).latest.unwrap().finish(),
        Some(12.0),
        "locally inserted rows must appear in the next epochs"
    );
}

#[test]
fn expiry_stops_epochs() {
    let n = 10;
    let (mut eng, mut sw, schema) = world(n, 4, 240);
    settle(&mut eng, &mut sw, n);
    let h = sw
        .inject_continuous_query(
            &mut eng,
            NodeIdx(0),
            WINDOW,
            Duration::from_mins(1),
            Duration::from_mins(10),
            &schema,
        )
        .unwrap();
    let hz = eng.now() + Duration::from_mins(30);
    sw.run_until(&mut eng, hz);
    let q = sw.query(h);
    assert!(!q.active);
    let submissions_at_expiry = sw.stats.result_submissions;
    let hz = eng.now() + Duration::from_mins(30);
    sw.run_until(&mut eng, hz);
    assert_eq!(
        sw.stats.result_submissions, submissions_at_expiry,
        "epochs must stop after expiry"
    );
}
