//! Robustness under adverse network conditions: MSPastry "provides
//! reliable message delivery under adverse network conditions: even with
//! network message loss rates as high as 5%" (§3.1). The stacked
//! retransmission machinery (dissemination reissue, result retry,
//! join retry) must keep Seaweed's exactly-once guarantees intact.

use seaweed_core::{LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig};
use seaweed_sim::{Engine, NodeIdx, SimConfig, UniformTopology};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

fn world(n: usize, seed: u64, loss: f64) -> (SeaweedEngine, Seaweed<LiveTables>, Schema) {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(n);
    for node in 0..n {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .unwrap();
        tables.push(t);
    }
    let provider = LiveTables::new(tables);
    let eng: SeaweedEngine = Engine::new(
        Box::new(UniformTopology::new(n, Duration::from_millis(5))),
        SimConfig {
            seed,
            loss_rate: loss,
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    let sw = Seaweed::new(
        overlay,
        provider,
        SeaweedConfig {
            seed,
            ..Default::default()
        },
    );
    (eng, sw, schema)
}

#[test]
fn exactly_once_with_five_percent_message_loss() {
    let n = 40;
    let (mut eng, mut sw, schema) = world(n, 5, 0.05);
    for i in 0..n {
        eng.schedule_up(Time::from_micros(1 + i as u64 * 700_000), NodeIdx(i as u32));
    }
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(15));
    assert_eq!(
        sw.overlay.num_joined(),
        n,
        "joins must survive loss (retry)"
    );

    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(0),
            "SELECT SUM(v) FROM T WHERE flag = 1",
            Duration::from_hours(4),
            &schema,
        )
        .unwrap();
    // Give retransmissions time to fill the gaps.
    let hz = eng.now() + Duration::from_mins(20);
    sw.run_until(&mut eng, hz);

    let q = sw.query(h);
    assert_eq!(
        q.rows(),
        n as u64,
        "every endsystem exactly once despite loss"
    );
    let expected: f64 = (1..=n as i64).map(|v| v as f64).sum();
    assert_eq!(q.latest.unwrap().finish(), Some(expected));
    // The predictor must also have survived (reissues cover lost ranges).
    let p = q.predictor.as_ref().expect("predictor despite loss");
    assert!(
        p.total_rows() > 0.9 * n as f64,
        "predictor total {}",
        p.total_rows()
    );
    // Loss must actually have occurred for the test to mean anything.
    assert!(eng.dropped_loss > 0, "no messages were lost?");
}

#[test]
fn cancel_stops_incremental_results() {
    let n = 25;
    let (mut eng, mut sw, schema) = world(n, 6, 0.0);
    for i in 0..n {
        eng.schedule_up(Time::from_micros(1 + i as u64 * 400_000), NodeIdx(i as u32));
    }
    // Keep five endsystems down until later.
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(10));
    let t0 = eng.now();
    for i in 0..5 {
        eng.schedule_down(t0 + Duration::from_secs(i as u64 + 1), NodeIdx(i));
    }
    sw.run_until(&mut eng, t0 + Duration::from_mins(5));

    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(10),
            "SELECT COUNT(*) FROM T WHERE flag = 1",
            Duration::from_hours(8),
            &schema,
        )
        .unwrap();
    let hz = eng.now() + Duration::from_mins(2);
    sw.run_until(&mut eng, hz);
    let before = sw.query(h).rows();
    assert_eq!(before, (n - 5) as u64);

    // The user accepts the partial result and cancels (§2.1's scenario).
    sw.cancel_query(&mut eng, h);
    assert!(!sw.query(h).active);

    // The stragglers return — but the canceled query must not grow.
    let t1 = eng.now();
    for i in 0..5 {
        eng.schedule_up(t1 + Duration::from_mins(i as u64 + 1), NodeIdx(i));
    }
    sw.run_until(&mut eng, t1 + Duration::from_mins(30));
    assert_eq!(
        sw.query(h).rows(),
        before,
        "canceled query must stop accumulating"
    );
}
