//! End-to-end protocol tests: the full Seaweed stack (engine → Pastry →
//! Seaweed) on synthetic tables with known ground truth.

use seaweed_core::{LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig};
use seaweed_sim::{Engine, NodeIdx, SimConfig, UniformTopology};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

/// Each endsystem holds exactly one row matching `flag = 1` whose `v`
/// column is `node + 1`, plus noise rows with `flag = 0`. Exactly-once
/// counting is then directly observable: `rows == |H|` and
/// `SUM(v) == Σ_{i∈H}(i+1)`.
fn tables(n: usize) -> LiveTables {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut out = Vec::with_capacity(n);
    for node in 0..n {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .unwrap();
        for j in 0..5 {
            t.insert(vec![Value::Int(0), Value::Int(j)]).unwrap();
        }
        out.push(t);
    }
    LiveTables::new(out)
}

fn world(n: usize, seed: u64) -> (SeaweedEngine, Seaweed<LiveTables>, Schema) {
    let eng: SeaweedEngine = Engine::new(
        Box::new(UniformTopology::new(n, Duration::from_millis(5))),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    let provider = tables(n);
    let schema = provider.schema().clone();
    let sw = Seaweed::new(
        overlay,
        provider,
        SeaweedConfig {
            seed,
            ..Default::default()
        },
    );
    (eng, sw, schema)
}

/// Brings all `n` nodes up staggered over a minute and settles joins and
/// first metadata pushes.
fn settle(eng: &mut SeaweedEngine, sw: &mut Seaweed<LiveTables>, n: usize) {
    for i in 0..n {
        eng.schedule_up(Time::from_micros(1 + i as u64 * 777_000), NodeIdx(i as u32));
    }
    sw.run_until(eng, Time::ZERO + Duration::from_mins(10));
}

const QUERY_COUNT: &str = "SELECT COUNT(*) FROM T WHERE flag = 1";
const QUERY_SUM: &str = "SELECT SUM(v) FROM T WHERE flag = 1";

#[test]
fn query_over_fully_available_network() {
    let n = 30;
    let (mut eng, mut sw, schema) = world(n, 1);
    settle(&mut eng, &mut sw, n);
    assert_eq!(sw.overlay.num_joined(), n);

    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(0),
            QUERY_SUM,
            Duration::from_hours(4),
            &schema,
        )
        .unwrap();
    let hz = eng.now() + Duration::from_mins(5);
    sw.run_until(&mut eng, hz);

    let q = sw.query(h);
    // Predictor: everything available now, total ~ n rows.
    let p = q.predictor.as_ref().expect("predictor must arrive");
    assert!(q.predictor_at.is_some());
    assert!(
        (p.total_rows() - n as f64).abs() < n as f64 * 0.1,
        "predictor total {} vs {n}",
        p.total_rows()
    );
    assert!(p.completeness_at(Duration::ZERO) > 0.95);
    // Exact result, every endsystem counted exactly once.
    assert_eq!(q.rows(), n as u64);
    let expected_sum: f64 = (1..=n as i64).map(|v| v as f64).sum();
    assert_eq!(q.latest.unwrap().finish(), Some(expected_sum));
}

#[test]
fn predictor_reflects_unavailable_endsystems() {
    let n = 30;
    let down = 8;
    let (mut eng, mut sw, schema) = world(n, 2);
    settle(&mut eng, &mut sw, n);

    // Give every endsystem some up/down history so availability models
    // have observations, then take `down` nodes offline.
    let t0 = eng.now();
    for i in 0..down {
        eng.schedule_down(t0 + Duration::from_mins(i as u64 + 1), NodeIdx(i as u32));
    }
    // Let failure detection and metadata repair finish.
    sw.run_until(&mut eng, t0 + Duration::from_mins(30));

    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(20),
            QUERY_COUNT,
            Duration::from_hours(8),
            &schema,
        )
        .unwrap();
    let hz = eng.now() + Duration::from_mins(5);
    sw.run_until(&mut eng, hz);

    let q = sw.query(h);
    let p = q.predictor.as_ref().expect("predictor");
    // Total should still see ~all n endsystems (metadata answers for the
    // down ones); immediate only the live ones.
    assert!(
        (p.total_rows() - n as f64).abs() <= 1.5,
        "total {} vs {n}",
        p.total_rows()
    );
    let immediate = p.immediate_rows();
    assert!(
        (immediate - (n - down) as f64).abs() <= 1.5,
        "immediate {immediate} vs {}",
        n - down
    );
    // The result so far covers exactly the live endsystems.
    assert_eq!(q.rows(), (n - down) as u64);

    // Bring the down endsystems back: incremental results must converge
    // to full completeness, each endsystem exactly once.
    let t1 = eng.now();
    for i in 0..down {
        eng.schedule_up(
            t1 + Duration::from_mins(2 * i as u64 + 1),
            NodeIdx(i as u32),
        );
    }
    sw.run_until(&mut eng, t1 + Duration::from_hours(1));
    let q = sw.query(h);
    assert_eq!(
        q.rows(),
        n as u64,
        "incremental results must reach full completeness"
    );
}

#[test]
fn rejoining_endsystem_is_counted_exactly_once() {
    let n = 20;
    let (mut eng, mut sw, schema) = world(n, 3);
    settle(&mut eng, &mut sw, n);

    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(5),
            QUERY_SUM,
            Duration::from_hours(8),
            &schema,
        )
        .unwrap();
    let hz = eng.now() + Duration::from_mins(2);
    sw.run_until(&mut eng, hz);
    assert_eq!(sw.query(h).rows(), n as u64);

    // Node 7 bounces twice; the total must not change.
    let t0 = eng.now();
    eng.schedule_down(t0 + Duration::from_mins(1), NodeIdx(7));
    eng.schedule_up(t0 + Duration::from_mins(20), NodeIdx(7));
    eng.schedule_down(t0 + Duration::from_mins(40), NodeIdx(7));
    eng.schedule_up(t0 + Duration::from_mins(60), NodeIdx(7));
    sw.run_until(&mut eng, t0 + Duration::from_hours(2));

    let q = sw.query(h);
    assert_eq!(q.rows(), n as u64);
    let expected_sum: f64 = (1..=n as i64).map(|v| v as f64).sum();
    assert_eq!(q.latest.unwrap().finish(), Some(expected_sum));
}

#[test]
fn exactly_once_under_churn_during_query() {
    let n = 40;
    let (mut eng, mut sw, schema) = world(n, 4);
    settle(&mut eng, &mut sw, n);

    // Churn: a third of the nodes bounce on staggered schedules while the
    // query runs.
    let t0 = eng.now();
    for i in 0..n / 3 {
        let node = NodeIdx((i * 3) as u32);
        let off = t0 + Duration::from_mins(2 + i as u64);
        eng.schedule_down(off, node);
        eng.schedule_up(off + Duration::from_mins(15), node);
    }
    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(1),
            QUERY_SUM,
            Duration::from_hours(8),
            &schema,
        )
        .unwrap();
    sw.run_until(&mut eng, t0 + Duration::from_hours(3));

    let q = sw.query(h);
    // Every endsystem was available long enough at some point, so H must
    // equal the full population — counted exactly once each.
    assert_eq!(q.rows(), n as u64, "lost or duplicated contributions");
    let expected_sum: f64 = (1..=n as i64).map(|v| v as f64).sum();
    assert_eq!(q.latest.unwrap().finish(), Some(expected_sum));
    // Progress at the origin is monotone in rows.
    for w in q.progress.windows(2) {
        assert!(w[1].1 >= w[0].1, "origin saw row count regress");
    }
}

#[test]
fn predictor_latency_is_seconds_scale() {
    let n = 50;
    let (mut eng, mut sw, schema) = world(n, 5);
    settle(&mut eng, &mut sw, n);
    let injected = eng.now();
    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(9),
            QUERY_COUNT,
            Duration::from_hours(1),
            &schema,
        )
        .unwrap();
    sw.run_until(&mut eng, injected + Duration::from_mins(5));
    let q = sw.query(h);
    let at = q.predictor_at.expect("predictor arrived");
    let latency = at.since(injected);
    // Paper: 3.1 s at 2,000 endsystems. At 50 endsystems with 5 ms links
    // it must be well under a minute, and strictly positive.
    assert!(latency > Duration::ZERO);
    assert!(latency < Duration::from_secs(60), "latency {latency}");
}

#[test]
fn metadata_is_replicated_k_ways() {
    let n = 25;
    let (mut eng, mut sw, schema) = world(n, 6);
    let _ = &schema;
    settle(&mut eng, &mut sw, n);
    let k = sw.cfg.k_metadata;
    for node in 0..n as u32 {
        let holders: Vec<NodeIdx> = (0..n as u32)
            .map(NodeIdx)
            .filter(|&h| h != NodeIdx(node) && sw.holds_metadata(h, NodeIdx(node)))
            .collect();
        assert!(
            holders.len() >= k.min(n - 1),
            "node {node} metadata held by only {} nodes",
            holders.len()
        );
    }
    assert!(sw.stats.meta_pushes > 0);
}

#[test]
fn queries_expire_and_stop_consuming_state() {
    let n = 15;
    let (mut eng, mut sw, schema) = world(n, 7);
    settle(&mut eng, &mut sw, n);
    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(2),
            QUERY_COUNT,
            Duration::from_mins(10),
            &schema,
        )
        .unwrap();
    let hz = eng.now() + Duration::from_mins(30);
    sw.run_until(&mut eng, hz);
    let q = sw.query(h);
    assert!(!q.active, "query should have expired");
    assert_eq!(q.rows(), n as u64, "result completed before expiry");
    // A node bouncing after expiry must not resubmit.
    let rows_before = sw.query(h).rows();
    let t0 = eng.now();
    eng.schedule_down(t0 + Duration::from_mins(1), NodeIdx(3));
    eng.schedule_up(t0 + Duration::from_mins(5), NodeIdx(3));
    sw.run_until(&mut eng, t0 + Duration::from_mins(30));
    assert_eq!(sw.query(h).rows(), rows_before);
}

#[test]
fn deterministic_across_reruns() {
    let run = || {
        let n = 20;
        let (mut eng, mut sw, schema) = world(n, 42);
        settle(&mut eng, &mut sw, n);
        let h = sw
            .inject_query(
                &mut eng,
                NodeIdx(0),
                QUERY_SUM,
                Duration::from_hours(1),
                &schema,
            )
            .unwrap();
        let hz = eng.now() + Duration::from_mins(10);
        sw.run_until(&mut eng, hz);
        let q = sw.query(h);
        (
            q.rows(),
            q.predictor_at.map(|t| t.as_micros()),
            sw.stats.disseminate_msgs,
            sw.stats.result_submissions,
            eng.messages_sent,
        )
    };
    assert_eq!(run(), run());
}
