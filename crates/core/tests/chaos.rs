//! Chaos sweep: the full Seaweed stack under a deterministic fault plan
//! combining a structural partition, crash-amnesia, a correlated branch
//! outage, link degradation, message duplication and bounded reordering.
//! Across many seeds the [`ChaosOracle`] invariants must hold at every
//! checkpoint, and the same seed must reproduce a byte-identical event
//! log.

use proptest::prelude::*;
use seaweed_core::{ChaosOracle, LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig, OverlayMsg};
use seaweed_sim::{
    CorpNetTopology, CrashSpec, Engine, Event, FaultPlan, LinkFaultSpec, NodeIdx, OutageSpec,
    PartitionSpec, SimConfig, TraceConfig,
};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

const N: usize = 36;
const ROUTERS: usize = 24;
/// Query injection time; all fault windows are anchored after it.
const T0: u64 = 600_000_000; // 600 s in µs

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// Builds the fault plan from the topology's structure: cut the regional
/// router with the largest subtree, take the biggest branch down with
/// amnesia, degrade one router pair, and crash two bystanders.
fn chaos_plan(topo: &CorpNetTopology) -> FaultPlan {
    let regional = (topo.num_core()..topo.num_core() + topo.num_regional())
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .unwrap();
    let partition = PartitionSpec::from_router_cut(topo, regional, secs(602), secs(780));
    let branch = topo
        .branch_routers()
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .unwrap();
    let outage = OutageSpec::branch_outage(topo, branch, secs(640), secs(700), true);

    // Two bystander crashes, disjoint from the partition and the outage
    // (overlap is legal, but disjointness keeps every fault observable)
    // and sparing the origin (node 0).
    let excluded: Vec<u32> = partition
        .members
        .iter()
        .chain(outage.members.iter())
        .copied()
        .collect();
    let bystanders: Vec<u32> = (1..N as u32)
        .filter(|m| !excluded.contains(m))
        .take(2)
        .collect();
    let crashes = vec![
        CrashSpec {
            node: NodeIdx(bystanders[0]),
            at: secs(630),
            rejoin_after: Duration::from_secs(60),
        },
        CrashSpec {
            node: NodeIdx(bystanders[1]),
            at: secs(690),
            rejoin_after: Duration::from_secs(45),
        },
    ];

    let za = topo.router_of(NodeIdx(1)) as u32;
    let mut zb = topo.router_of(NodeIdx(2)) as u32;
    if zb == za {
        zb = topo.router_of(NodeIdx(3)) as u32;
    }
    FaultPlan {
        partitions: vec![partition],
        link_faults: vec![LinkFaultSpec {
            zone_a: za,
            zone_b: zb,
            from: secs(600),
            until: secs(720),
            extra_loss: 0.15,
            latency_mult: 3.0,
        }],
        crashes,
        outages: vec![outage],
        dup_rate: 0.02,
        reorder_window: Duration::from_millis(50),
    }
}

fn world(seed: u64, trace: bool) -> (SeaweedEngine, Seaweed<LiveTables>, Schema, FaultPlan) {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(N);
    for node in 0..N {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .unwrap();
        tables.push(t);
    }
    let topo = CorpNetTopology::with_params(N, ROUTERS, Duration::MILLISECOND, seed);
    let plan = chaos_plan(&topo);
    let eng: SeaweedEngine = Engine::new(
        Box::new(topo),
        SimConfig {
            seed,
            loss_rate: 0.01,
            faults: Some(plan.clone()),
            trace: trace.then(TraceConfig::default),
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(N, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    let sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed,
            ..Default::default()
        },
    );
    (eng, sw, schema, plan)
}

/// FNV-1a fingerprint over a compact per-event descriptor. Payload
/// contents are excluded; ordering, endpoints and timestamps pin the
/// schedule bit-for-bit.
struct EventLog {
    hash: u64,
    len: u64,
}

impl EventLog {
    fn new() -> Self {
        EventLog {
            hash: 0xcbf2_9ce4_8422_2325,
            len: 0,
        }
    }

    fn add(&mut self, t: Time, ev: &Event<OverlayMsg<seaweed_core::SeaweedMsg>>) {
        let desc = match *ev {
            Event::Message { from, to, .. } => format!("m:{}:{}:{}", t.as_micros(), from.0, to.0),
            Event::Timer { node, tag } => format!("t:{}:{}:{tag}", t.as_micros(), node.0),
            Event::NodeUp { node } => format!("u:{}:{}", t.as_micros(), node.0),
            Event::NodeDown { node } => format!("d:{}:{}", t.as_micros(), node.0),
            Event::NodeCrash { node } => format!("c:{}:{}", t.as_micros(), node.0),
            Event::PartitionStart { partition } => format!("ps:{}:{partition}", t.as_micros()),
            Event::PartitionEnd { partition } => format!("pe:{}:{partition}", t.as_micros()),
        };
        for b in desc.as_bytes() {
            self.hash ^= u64::from(*b);
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
        self.len += 1;
    }
}

struct RunResult {
    log_hash: u64,
    log_len: u64,
    rows: u64,
    violations: Vec<String>,
    amnesia_crashes: u64,
    duplicated: u64,
    dropped_partition: u64,
    trace_recorded: u64,
}

fn run_chaos(seed: u64, trace: bool) -> RunResult {
    let (mut eng, mut sw, schema, _plan) = world(seed, trace);
    for i in 0..N {
        eng.schedule_up(Time(1 + i as u64 * 300_000), NodeIdx(i as u32));
    }
    let mut log = EventLog::new();
    let mut drive = |eng: &mut SeaweedEngine, sw: &mut Seaweed<LiveTables>, horizon: Time| {
        while let Some((t, ev)) = eng.next_event_before(horizon) {
            log.add(t, &ev);
            sw.dispatch(eng, ev);
        }
    };
    drive(&mut eng, &mut sw, Time(T0));
    assert_eq!(sw.overlay.num_joined(), N, "all join before the faults");

    sw.inject_query(
        &mut eng,
        NodeIdx(0),
        "SELECT SUM(v) FROM T WHERE flag = 1",
        Duration::from_hours(4),
        &schema,
    )
    .unwrap();

    // Checkpoints straddle every fault window: mid-partition/outage,
    // post-crash-rejoin, post-heal, and converged.
    let oracle = ChaosOracle::new(N as u64);
    let mut violations = Vec::new();
    for t in [650, 720, 800, 1000, 1500] {
        drive(&mut eng, &mut sw, secs(t));
        violations.extend(oracle.check(&sw, &eng));
    }

    RunResult {
        log_hash: log.hash,
        log_len: log.len,
        rows: sw.query(0).rows(),
        violations,
        amnesia_crashes: sw.stats.amnesia_crashes,
        duplicated: eng.messages_duplicated,
        dropped_partition: eng.dropped_partition,
        trace_recorded: eng.tracer().map_or(0, seaweed_sim::Tracer::recorded),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn chaos_invariants_hold_and_runs_are_deterministic(seed in 0u64..10_000) {
        let a = run_chaos(seed, false);
        prop_assert!(
            a.violations.is_empty(),
            "oracle violations (seed {seed}):\n  {}",
            a.violations.join("\n  ")
        );
        // Every fault class must actually have fired.
        prop_assert!(a.amnesia_crashes >= 2, "amnesia crashes: {}", a.amnesia_crashes);
        prop_assert!(a.duplicated > 0, "no duplicated messages");
        prop_assert!(a.dropped_partition > 0, "partition cut no traffic");
        // Delay-aware, not wrong: results may be incomplete under faults
        // but never inflated (the oracle checked rows <= N), and most of
        // the population converges once everything heals.
        prop_assert!(
            a.rows >= (N as u64) * 55 / 100,
            "rows {} of {N} after heal",
            a.rows
        );

        // Same seed, byte-identical schedule.
        let b = run_chaos(seed, false);
        prop_assert_eq!(a.log_hash, b.log_hash, "event logs diverged (seed {})", seed);
        prop_assert_eq!(a.log_len, b.log_len);
        prop_assert_eq!(a.rows, b.rows);
    }

    /// The full chaos run with engine tracing enabled stays oracle-clean
    /// and its event-log fingerprint is identical to the tracing-off run
    /// of the same seed: observation never perturbs the schedule.
    #[test]
    fn chaos_with_tracing_matches_untraced(seed in 0u64..10_000) {
        let traced = run_chaos(seed, true);
        prop_assert!(
            traced.violations.is_empty(),
            "oracle violations under tracing (seed {seed}):\n  {}",
            traced.violations.join("\n  ")
        );
        prop_assert!(traced.trace_recorded > 0, "tracer captured nothing");
        let plain = run_chaos(seed, false);
        prop_assert_eq!(plain.trace_recorded, 0);
        prop_assert_eq!(traced.log_hash, plain.log_hash, "tracing perturbed the schedule (seed {})", seed);
        prop_assert_eq!(traced.log_len, plain.log_len);
        prop_assert_eq!(traced.rows, plain.rows);
    }
}
