//! Result-retransmission backoff: while a submission target is
//! unreachable (here: behind a partition), a fixed retry period hammers
//! the cut with doomed retransmissions; the capped exponential backoff
//! sends far fewer — and both converge to the same exact answer once
//! the partition heals.

use seaweed_core::{LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig};
use seaweed_sim::{Engine, FaultPlan, NodeIdx, PartitionSpec, SimConfig, UniformTopology};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

const N: usize = 30;
const SEED: u64 = 11;

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// Runs the 5%-loss partition scenario with the given retry cap and
/// returns `(result_retries, rows at origin)`.
fn run(result_retry_cap: Duration) -> (u64, u64) {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(N);
    for node in 0..N {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .unwrap();
        tables.push(t);
    }
    // A third of the population is cut off for two minutes; the query is
    // injected mid-partition, so majority-side submissions whose vertex
    // targets sit behind the cut are dropped and retry until the routing
    // state converges — a fixed period hammers the cut, backoff does not.
    let plan = FaultPlan {
        partitions: vec![PartitionSpec {
            members: (20..N as u32).collect(),
            from: secs(905),
            until: secs(1025),
        }],
        ..FaultPlan::default()
    };
    let mut eng: SeaweedEngine = Engine::new(
        Box::new(UniformTopology::new(N, Duration::from_millis(5))),
        SimConfig {
            seed: SEED,
            loss_rate: 0.05,
            faults: Some(plan),
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(N, SEED),
        OverlayConfig {
            seed: SEED,
            ..Default::default()
        },
    );
    let mut sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed: SEED,
            result_retry: Duration::from_secs(2),
            result_retry_cap,
            ..Default::default()
        },
    );
    for i in 0..N {
        eng.schedule_up(Time::from_micros(1 + i as u64 * 700_000), NodeIdx(i as u32));
    }
    sw.run_until(&mut eng, secs(900));
    assert_eq!(sw.overlay.num_joined(), N, "all join before the partition");
    sw.run_until(&mut eng, secs(910));

    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(0),
            "SELECT SUM(v) FROM T WHERE flag = 1",
            Duration::from_hours(4),
            &schema,
        )
        .unwrap();
    sw.run_until(&mut eng, secs(1800));
    assert!(eng.dropped_partition > 0, "partition cut no traffic");
    (sw.stats.result_retries, sw.query(h).rows())
}

#[test]
fn exponential_backoff_retransmits_less_than_fixed_retry() {
    // cap == base degenerates to the old fixed-period retry.
    let (fixed_retries, fixed_rows) = run(Duration::from_secs(2));
    let (backoff_retries, backoff_rows) = run(Duration::from_secs(64));

    assert_eq!(fixed_rows, N as u64, "fixed retry converges after heal");
    assert_eq!(backoff_rows, N as u64, "backoff converges after heal");
    assert!(
        backoff_retries < fixed_retries,
        "backoff must retransmit less: {backoff_retries} vs {fixed_retries}"
    );
    // The gap should be substantial across a two-minute outage (fixed
    // retries every 2 s; backoff reaches its cap after a handful).
    assert!(
        2 * backoff_retries <= fixed_retries,
        "expected at least a 2x reduction: {backoff_retries} vs {fixed_retries}"
    );
}
