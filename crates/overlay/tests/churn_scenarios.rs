//! Randomized churn scenarios for the overlay: across many seeds, after
//! churn settles, membership views converge to ground truth and routing
//! still lands on the oracle root.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seaweed_overlay::{is_overlay_tag, Overlay, OverlayConfig, OverlayEvent, OverlayMsg};
use seaweed_sim::{Engine, Event, NodeIdx, SimConfig, TrafficClass, UniformTopology};
use seaweed_types::{Duration, Id, Time};

type Eng = Engine<OverlayMsg<u64>>;

fn drive(eng: &mut Eng, ov: &mut Overlay, horizon: Time) -> Vec<OverlayEvent<u64>> {
    let mut out = Vec::new();
    while let Some((_, ev)) = eng.next_event_before(horizon) {
        match ev {
            Event::Message { from, to, payload } => {
                out.extend(ov.on_message(eng, from, to, payload.into_owned()))
            }
            Event::Timer { node, tag } if is_overlay_tag(tag) => {
                out.extend(ov.on_timer(eng, node, tag))
            }
            Event::Timer { .. } => {}
            Event::NodeUp { node } => out.extend(ov.node_up(eng, node)),
            Event::NodeDown { node } => ov.node_down(eng, node),
            Event::NodeCrash { node } => ov.node_down(eng, node),
            Event::PartitionStart { partition } => {
                let members = eng.partition_members(partition);
                ov.partition_started(eng, &members);
            }
            Event::PartitionEnd { partition } => {
                let members = eng.partition_members(partition);
                ov.partition_healed(eng, &members);
            }
        }
    }
    out
}

#[test]
fn randomized_churn_converges_across_seeds() {
    for seed in 0..8u64 {
        let n = 50;
        let mut eng: Eng = Engine::new(
            Box::new(UniformTopology::new(n, Duration::from_millis(4))),
            SimConfig {
                seed,
                ..Default::default()
            },
        );
        let mut ov = Overlay::new(
            Overlay::random_ids(n, seed),
            OverlayConfig {
                seed,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a0);

        // Bring everyone up.
        for i in 0..n {
            eng.schedule_up(Time::from_micros(1 + i as u64 * 200_000), NodeIdx(i as u32));
        }
        drive(&mut eng, &mut ov, Time::ZERO + Duration::from_mins(10));

        // Random churn: 40 events over an hour, keeping at least half up.
        let mut up = vec![true; n];
        let mut t = eng.now();
        for _ in 0..40 {
            t += Duration::from_secs(rng.gen_range(30..120));
            let node = rng.gen_range(0..n);
            if up[node] {
                if up.iter().filter(|&&u| u).count() > n / 2 {
                    up[node] = false;
                    eng.schedule_down(t, NodeIdx(node as u32));
                }
            } else {
                up[node] = true;
                eng.schedule_up(t, NodeIdx(node as u32));
            }
        }
        // Let everything settle well past the failure-detection window.
        drive(&mut eng, &mut ov, t + Duration::from_mins(10));

        // Survivors' leafsets contain their true live ring neighbors.
        let live: Vec<usize> = (0..n).filter(|&i| eng.is_up(NodeIdx(i as u32))).collect();
        assert!(live.len() >= n / 2);
        let mut order = live.clone();
        order.sort_by_key(|&i| ov.ids()[i].0);
        for (pos, &i) in order.iter().enumerate() {
            let succ = NodeIdx(order[(pos + 1) % order.len()] as u32);
            let pred = NodeIdx(order[(pos + order.len() - 1) % order.len()] as u32);
            let members = ov.leafset_members(NodeIdx(i as u32));
            assert!(
                members.contains(&succ) && members.contains(&pred),
                "seed {seed}: node {i} leafset diverged after churn"
            );
            // And contains no dead nodes.
            for m in members {
                assert!(eng.is_up(m), "seed {seed}: node {i} still lists dead {m:?}");
            }
        }

        // Routing from random live nodes lands on oracle roots.
        for trial in 0..20 {
            let key = Id::random(&mut rng);
            let from = NodeIdx(live[rng.gen_range(0..live.len())] as u32);
            let mut evs = ov.route(&mut eng, from, key, trial, 64, TrafficClass::Query);
            let horizon = eng.now() + Duration::from_mins(2);
            evs.extend(drive(&mut eng, &mut ov, horizon));
            let delivered: Vec<NodeIdx> = evs
                .iter()
                .filter_map(|e| match e {
                    OverlayEvent::Deliver { node, key: k, .. } if *k == key => Some(*node),
                    _ => None,
                })
                .collect();
            assert_eq!(delivered.len(), 1, "seed {seed} trial {trial}");
            assert_eq!(
                Some(delivered[0]),
                ov.oracle_root(key),
                "seed {seed} trial {trial}"
            );
        }
    }
}

#[test]
fn total_churn_then_recovery() {
    // Every node dies; a fresh cohort joins; the overlay must rebuild
    // from scratch around the survivors of the second wave.
    let n = 24;
    let seed = 3;
    let mut eng: Eng = Engine::new(
        Box::new(UniformTopology::new(n, Duration::from_millis(4))),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    let mut ov = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    // First half up.
    for i in 0..n / 2 {
        eng.schedule_up(Time::from_micros(1 + i as u64 * 100_000), NodeIdx(i as u32));
    }
    drive(&mut eng, &mut ov, Time::ZERO + Duration::from_mins(5));
    assert_eq!(ov.num_joined(), n / 2);

    // First half dies while second half arrives.
    let t0 = eng.now();
    for i in 0..n / 2 {
        eng.schedule_down(t0 + Duration::from_secs(10 + i as u64), NodeIdx(i as u32));
        eng.schedule_up(
            t0 + Duration::from_secs(5 + i as u64),
            NodeIdx((n / 2 + i) as u32),
        );
    }
    drive(&mut eng, &mut ov, t0 + Duration::from_mins(10));
    assert_eq!(ov.num_joined(), n / 2, "second cohort fully joined");
    for i in n / 2..n {
        assert!(
            ov.is_joined(NodeIdx(i as u32)),
            "node {i} failed to join during the swap"
        );
    }
}
