//! Per-node Pastry state: leafset and routing table.

use seaweed_sim::NodeIdx;
use seaweed_types::{Id, IdRange};

/// Pastry state of one endsystem.
#[derive(Clone, Debug)]
pub struct NodeState {
    /// This node's endsystemId.
    pub id: Id,
    /// Has the node completed the join protocol since it last came up?
    pub joined: bool,
    /// Clockwise leafset half: nearest live neighbors in increasing ring
    /// distance (at most l/2).
    pub cw: Vec<NodeIdx>,
    /// Counter-clockwise half, same ordering.
    pub ccw: Vec<NodeIdx>,
    /// Routing table, `rows × 2^b` flattened; `rt[row * cols + digit]`.
    pub rt: Vec<Option<NodeIdx>>,
}

impl NodeState {
    #[must_use]
    pub fn new(id: Id, rows: usize, cols: usize) -> Self {
        NodeState {
            id,
            joined: false,
            cw: Vec::new(),
            ccw: Vec::new(),
            rt: vec![None; rows * cols],
        }
    }

    /// Clears volatile state when the node goes down (metadata about the
    /// old incarnation must not leak into the next).
    pub fn reset(&mut self) {
        self.joined = false;
        self.cw.clear();
        self.ccw.clear();
        self.rt.iter_mut().for_each(|e| *e = None);
    }

    /// All current leafset members (both halves).
    pub fn leafset(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.cw.iter().chain(self.ccw.iter()).copied()
    }

    /// True if `n` is in the leafset.
    #[must_use]
    pub fn in_leafset(&self, n: NodeIdx) -> bool {
        self.cw.contains(&n) || self.ccw.contains(&n)
    }

    /// Removes `n` from the leafset; returns whether it was present.
    pub fn remove_from_leafset(&mut self, n: NodeIdx) -> bool {
        let mut removed = false;
        if let Some(p) = self.cw.iter().position(|&x| x == n) {
            self.cw.remove(p);
            removed = true;
        }
        if let Some(p) = self.ccw.iter().position(|&x| x == n) {
            self.ccw.remove(p);
            removed = true;
        }
        removed
    }

    /// The namespace range this node is responsible for — keys closer to
    /// it than to its nearest live neighbor on either side. A node with
    /// no neighbors owns the full namespace.
    #[must_use]
    pub fn responsible_range(&self, ids: &[Id]) -> IdRange {
        match (self.ccw.first(), self.cw.first()) {
            (None, None) => IdRange::FULL,
            (ccw, cw) => {
                // Fall back to the other side's neighbor when one half is
                // empty (2-node networks).
                let pred = ids[ccw.or(cw).expect("nonempty").idx()];
                let succ = ids[cw.or(ccw).expect("nonempty").idx()];
                let lo = ring_midpoint(pred, self.id);
                let hi = ring_midpoint(self.id, succ);
                if lo == hi {
                    // Two-node ring: split the circle in half.
                    IdRange::new(lo, 1u128 << 127)
                } else {
                    IdRange::between(lo, hi)
                }
            }
        }
    }
}

/// Midpoint of the clockwise arc from `a` to `b` (exclusive of wrap
/// ambiguity: if `a == b` the result is `a`).
#[must_use]
pub fn ring_midpoint(a: Id, b: Id) -> Id {
    a.wrapping_add(a.cw_dist(b) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leafset_membership_ops() {
        let mut n = NodeState::new(Id(100), 32, 16);
        n.cw = vec![NodeIdx(1), NodeIdx(2)];
        n.ccw = vec![NodeIdx(3)];
        assert!(n.in_leafset(NodeIdx(2)));
        assert!(!n.in_leafset(NodeIdx(9)));
        assert_eq!(n.leafset().count(), 3);
        assert!(n.remove_from_leafset(NodeIdx(2)));
        assert!(!n.remove_from_leafset(NodeIdx(2)));
        assert_eq!(n.leafset().count(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut n = NodeState::new(Id(5), 2, 4);
        n.joined = true;
        n.cw = vec![NodeIdx(1)];
        n.rt[3] = Some(NodeIdx(2));
        n.reset();
        assert!(!n.joined);
        assert_eq!(n.leafset().count(), 0);
        assert!(n.rt.iter().all(Option::is_none));
    }

    #[test]
    fn midpoint_on_ring() {
        assert_eq!(ring_midpoint(Id(10), Id(20)), Id(15));
        // Wrapping arc.
        assert_eq!(ring_midpoint(Id(u128::MAX - 1), Id(4)), Id(1));
        assert_eq!(ring_midpoint(Id(7), Id(7)), Id(7));
    }

    #[test]
    fn responsible_range_with_neighbors() {
        let ids = vec![Id(0), Id(100), Id(200)];
        let mut n = NodeState::new(Id(100), 32, 16);
        // Node 1 (id 100) between node 0 (id 0) and node 2 (id 200).
        n.ccw = vec![NodeIdx(0)];
        n.cw = vec![NodeIdx(2)];
        let r = n.responsible_range(&ids);
        assert!(r.contains(Id(100)));
        assert!(r.contains(Id(50)));
        assert!(r.contains(Id(149)));
        assert!(!r.contains(Id(49)));
        assert!(!r.contains(Id(150)));
    }

    #[test]
    fn responsible_range_singleton_and_pair() {
        let ids = vec![Id(0), Id(1u128 << 127)];
        let lone = NodeState::new(Id(0), 32, 16);
        assert!(lone.responsible_range(&ids).is_full());

        let mut a = NodeState::new(Id(0), 32, 16);
        a.cw = vec![NodeIdx(1)];
        let r = a.responsible_range(&ids);
        // Owns half the ring (the exact midpoint is a boundary tie that
        // goes to the clockwise neighbor).
        assert!(r.contains(Id(0)));
        assert!(r.contains(Id((1u128 << 126) - 1)));
        assert!(!r.contains(Id(1u128 << 127)));
    }
}
