//! The overlay orchestrator: join, leafset maintenance, prefix routing.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seaweed_sim::{Engine, NodeIdx, TimerHandle, TrafficClass};
use seaweed_types::{Duration, Id, IdRange};

use crate::node::NodeState;
use crate::ring::{LayoutKind, RingIndex};
use crate::wire;

/// Engine type every overlay-based application runs on.
pub type OverlayEngine<A> = Engine<OverlayMsg<A>>;

/// Replica-selection policy for cover/hedge picks (dissemination
/// delegation and backup targets).
///
/// `IdOrder` is the paper's blind policy — pure ring-distance order —
/// retained as the byte-identical equivalence baseline. `AvailAware`
/// re-ranks candidates by a caller-supplied availability score (the
/// protocol layer scores with its per-endsystem availability models), so
/// traffic prefers the replica most likely up *now*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SelectionKind {
    #[default]
    IdOrder,
    AvailAware,
}

/// Overlay configuration; defaults are the paper's (§4.3.1).
#[derive(Clone, Debug)]
pub struct OverlayConfig {
    /// Digit width: ids are base-2^b sequences (paper: 4).
    pub b: u8,
    /// Leafset size l (l/2 per side; paper: 8).
    pub leafset: usize,
    /// Leafset heartbeat period (paper: 30 s).
    pub heartbeat: Duration,
    /// How long after a failure its leafset neighbors notice: one
    /// heartbeat period plus a grace; jittered per detector.
    pub detect_delay: Duration,
    /// Period of the leafset anti-entropy probe (MSPastry-style): each
    /// joined node periodically pulls one leafset member's leafset and
    /// merges it, repairing asymmetric views left by lost Announces.
    pub leafset_refresh: Duration,
    /// Seed for id assignment jitter-free operations (bootstrap pick,
    /// detection jitter).
    pub seed: u64,
    /// Hot-state container layout, for this crate's ring and the
    /// protocol layer's per-query registries (which read it via
    /// [`Overlay::config`]). `Map` retains the original BTreeMap
    /// containers as the equivalence-test baseline.
    pub layout: LayoutKind,
    /// Replica-selection policy consulted by [`Overlay::select_cover`].
    /// `IdOrder` preserves pre-hedging behaviour bit-for-bit.
    pub selection: SelectionKind,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            b: 4,
            leafset: 8,
            heartbeat: Duration::from_secs(30),
            detect_delay: Duration::from_secs(40),
            leafset_refresh: Duration::from_secs(60),
            seed: 0,
            layout: LayoutKind::default(),
            selection: SelectionKind::default(),
        }
    }
}

/// Messages exchanged by the overlay; `A` is the application payload.
/// `Clone` lets the engine's fault layer deliver duplicated copies.
#[derive(Clone, Debug)]
pub enum OverlayMsg<A> {
    /// A routed message heading for the live node closest to `key`.
    /// `size` is the application payload's wire size, preserved across
    /// hops for bandwidth accounting.
    Route {
        key: Id,
        origin: NodeIdx,
        hops: u8,
        size: u32,
        payload: A,
    },
    /// A join request being routed toward the joiner's id.
    JoinRequest { joiner: NodeIdx, hops: u8 },
    /// One routing-table row offered to a joiner by a node on the join
    /// path.
    RtRow { entries: Vec<NodeIdx> },
    /// The join root's leafset, completing the join.
    JoinReply { leafset: Vec<NodeIdx> },
    /// A freshly joined node introducing itself to its leafset.
    Announce,
    /// Leafset repair request (the reply carries the peer's leafset).
    LeafsetPull,
    /// Leafset repair reply.
    LeafsetPush { members: Vec<NodeIdx> },
    /// A direct application message to a known endsystem.
    App(A),
}

/// Events surfaced to the application layer.
#[derive(Debug)]
pub enum OverlayEvent<A> {
    /// A routed message reached the node responsible for `key`.
    Deliver {
        node: NodeIdx,
        key: Id,
        origin: NodeIdx,
        hops: u8,
        payload: A,
    },
    /// A direct application message arrived.
    AppMessage {
        node: NodeIdx,
        from: NodeIdx,
        payload: A,
    },
    /// `node` completed the join protocol and is a full overlay member.
    Joined { node: NodeIdx },
    /// `joined` entered `node`'s leafset.
    NeighborJoined { node: NodeIdx, joined: NodeIdx },
    /// `node` detected the failure of leafset neighbor `failed` (one
    /// detection delay after the fact) and repaired its leafset.
    NeighborFailed { node: NodeIdx, failed: NodeIdx },
}

/// Counters exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverlayStats {
    pub joins: u64,
    pub join_retries: u64,
    pub leafset_repairs: u64,
    /// Leafset rebuilds performed while healing a network partition.
    pub partition_repairs: u64,
    /// Periodic leafset anti-entropy pulls sent.
    pub leafset_refreshes: u64,
    /// Stale-entry probes charged while routing around departed nodes.
    pub probes: u64,
    pub routed_messages: u64,
    pub delivered_messages: u64,
    pub total_hops: u64,
    pub max_hops: u8,
}

// Timer-tag space: the top two bits select the subsystem. Tags with the
// top two bits clear belong to the application layer.
/// RNG stream constants (registered in lint.toml `[[stream]]`): the
/// overlay's maintenance draws and the id-assignment helper each own a
/// stream so their draw orders survive refactors independently.
const OVERLAY_STREAM: u64 = 0x0ea1_a700_1a7e_5700;
const ID_ASSIGN_STREAM: u64 = 0x01d5_0f5e_aeed;

const TAG_KIND_SHIFT: u32 = 62;
const TAG_FAIL: u64 = 0b11 << TAG_KIND_SHIFT;
const TAG_JOIN_RETRY: u64 = 0b10 << TAG_KIND_SHIFT;
const TAG_LS_REFRESH: u64 = 0b01 << TAG_KIND_SHIFT;
const TAG_PAYLOAD_MASK: u64 = (1 << TAG_KIND_SHIFT) - 1;

/// Is this timer tag owned by the overlay (vs the application)?
#[must_use]
pub fn is_overlay_tag(tag: u64) -> bool {
    tag >> TAG_KIND_SHIFT != 0
}

/// The Pastry overlay over all simulated endsystems.
#[derive(Debug)]
pub struct Overlay {
    cfg: OverlayConfig,
    ids: Vec<Id>,
    nodes: Vec<NodeState>,
    /// Ground truth of *joined, live* nodes (the oracle used for
    /// membership convergence; see crate docs): the sorted-vec universe
    /// plus a live bitset. Maintained under every layout — its
    /// membership-ignoring range scans serve the protocol layer in both.
    index: RingIndex,
    /// Retained map baseline, populated and consulted only under
    /// [`LayoutKind::Map`]; the layout-equivalence proptest pins the two
    /// walk implementations byte-identical.
    ring_map: Option<BTreeMap<u128, NodeIdx>>,
    /// Joined live nodes as a dense list for O(1) random bootstrap picks.
    joined_list: Vec<NodeIdx>,
    joined_pos: Vec<usize>,
    /// Reverse leafset index: `listed_by[n]` holds every node whose
    /// leafset currently contains `n`. Failure detection is armed from
    /// this set — leafset views can be asymmetric, so the dead node's own
    /// view is *not* a valid list of its watchers. BTreeSet gives
    /// deterministic (ascending) iteration, which the per-detector jitter
    /// draws rely on.
    listed_by: Vec<BTreeSet<u32>>,
    /// Pending join-retry timer per node, cancelled on join completion.
    join_retry: Vec<Option<TimerHandle>>,
    /// Rotation cursor into each node's leafset for the periodic
    /// anti-entropy probe.
    refresh_pos: Vec<usize>,
    /// Pending failure-detection timers keyed by the *failed* node:
    /// `(detector, handle)` pairs, cancelled if the node comes back up
    /// before the detection delay elapses.
    fail_timers: Vec<Vec<(u32, TimerHandle)>>,
    rng: StdRng,
    rows: usize,
    cols: usize,
    pub stats: OverlayStats,
}

const NO_POS: usize = usize::MAX;

impl Overlay {
    /// Creates the overlay for a fixed id assignment (one id per
    /// endsystem; ids persist across availability sessions, as in
    /// Seaweed where the endsystemId identifies the machine).
    #[must_use]
    pub fn new(ids: Vec<Id>, cfg: OverlayConfig) -> Self {
        let rows = Id::num_digits(cfg.b);
        let cols = 1usize << cfg.b;
        let nodes = ids
            .iter()
            .map(|&id| NodeState::new(id, rows, cols))
            .collect();
        let n = ids.len();
        let index = RingIndex::new(&ids);
        let ring_map = (cfg.layout == LayoutKind::Map).then(BTreeMap::new);
        Overlay {
            rng: StdRng::seed_from_u64(cfg.seed ^ OVERLAY_STREAM),
            cfg,
            ids,
            nodes,
            index,
            ring_map,
            joined_list: Vec::new(),
            joined_pos: vec![NO_POS; n],
            listed_by: vec![BTreeSet::new(); n],
            join_retry: vec![None; n],
            refresh_pos: vec![0; n],
            fail_timers: vec![Vec::new(); n],
            rows,
            cols,
            stats: OverlayStats::default(),
        }
    }

    /// Random id assignment for `n` endsystems.
    #[must_use]
    pub fn random_ids(n: usize, seed: u64) -> Vec<Id> {
        let mut rng = StdRng::seed_from_u64(seed ^ ID_ASSIGN_STREAM);
        (0..n).map(|_| Id::random(&mut rng)).collect()
    }

    #[must_use]
    pub fn id_of(&self, n: NodeIdx) -> Id {
        self.ids[n.idx()]
    }

    #[must_use]
    pub fn ids(&self) -> &[Id] {
        &self.ids
    }

    #[must_use]
    pub fn config(&self) -> &OverlayConfig {
        &self.cfg
    }

    #[must_use]
    pub fn is_joined(&self, n: NodeIdx) -> bool {
        self.nodes[n.idx()].joined
    }

    #[must_use]
    pub fn num_joined(&self) -> usize {
        self.joined_list.len()
    }

    /// Deduplicated leafset members of `n` (its own, possibly stale,
    /// view).
    #[must_use]
    pub fn leafset_members(&self, n: NodeIdx) -> Vec<NodeIdx> {
        let mut out: Vec<NodeIdx> = Vec::with_capacity(self.cfg.leafset);
        for m in self.nodes[n.idx()].leafset() {
            if !out.contains(&m) {
                out.push(m);
            }
        }
        out
    }

    /// The `k` nodes whose ids are ring-closest to `n`'s id, from `n`'s
    /// own leafset view — Seaweed's metadata replica set (k must be ≤ l).
    #[must_use]
    pub fn replica_set(&self, n: NodeIdx, k: usize) -> Vec<NodeIdx> {
        let id = self.ids[n.idx()];
        let mut members = self.leafset_members(n);
        members.sort_by(|&a, &b| {
            let (da, db) = (
                self.ids[a.idx()].ring_dist(id),
                self.ids[b.idx()].ring_dist(id),
            );
            da.cmp(&db)
                .then(self.ids[a.idx()].0.cmp(&self.ids[b.idx()].0))
        });
        members.truncate(k);
        members
    }

    /// The namespace range `n` believes it is responsible for.
    #[must_use]
    pub fn responsible_range(&self, n: NodeIdx) -> IdRange {
        self.nodes[n.idx()].responsible_range(&self.ids)
    }

    /// The open interval between `n`'s nearest live neighbors — the
    /// largest range in which `n` is the *only* live endsystem (its own
    /// view). Any subrange of this contains no other live node, which is
    /// the paper's condition for taking responsibility for a range's
    /// unavailable endsystems during dissemination. Note this is wider
    /// than [`Overlay::responsible_range`] and overlaps the neighbors'
    /// equivalents.
    #[must_use]
    pub fn sole_coverage_range(&self, n: NodeIdx) -> IdRange {
        let st = &self.nodes[n.idx()];
        match (st.ccw.first(), st.cw.first()) {
            (None, None) => IdRange::FULL,
            (ccw, cw) => {
                let pred = self.ids[ccw.or(cw).expect("nonempty").idx()];
                let succ = self.ids[cw.or(ccw).expect("nonempty").idx()];
                IdRange::between(pred.wrapping_add(1), succ)
            }
        }
    }

    /// Ground-truth replica set for an arbitrary id: the `k` joined live
    /// nodes ring-closest to `id` (oracle; callers charge the repair
    /// traffic the real membership exchange would cost).
    #[must_use]
    pub fn replica_set_oracle(&self, id: Id, k: usize) -> Vec<NodeIdx> {
        let half = k.div_ceil(2) + 1;
        let mut cands = self.ring_neighbors_cw(id, half + k);
        for m in self.ring_neighbors_ccw(id, half + k) {
            if !cands.contains(&m) {
                cands.push(m);
            }
        }
        // Include an exact-id match if present (ring_neighbors skip it).
        if let Some(exact) = self.ring_get(id.0) {
            if !cands.contains(&exact) {
                cands.push(exact);
            }
        }
        cands.sort_by(|&a, &b| {
            let (da, db) = (
                self.ids[a.idx()].ring_dist(id),
                self.ids[b.idx()].ring_dist(id),
            );
            da.cmp(&db)
                .then(self.ids[a.idx()].0.cmp(&self.ids[b.idx()].0))
        });
        cands.truncate(k);
        cands
    }

    /// Candidate endsystems for covering `key`: the `k` ring-closest
    /// members of the namespace *universe* (up or down — a delegator's
    /// replicated metadata knows the ids either way), ranked by the
    /// configured [`SelectionKind`].
    ///
    /// `IdOrder` returns the pure ring-distance order; `score` is never
    /// consulted, keeping the baseline path byte-identical to pre-hedging
    /// behaviour. `AvailAware` stably re-ranks by `score` (higher first),
    /// so ring distance then id still break ties among equal scores.
    #[must_use]
    pub fn select_cover(&self, key: Id, k: usize, score: impl Fn(NodeIdx) -> u64) -> Vec<NodeIdx> {
        let mut cands = self.index.around(key, k, &self.ids);
        if self.cfg.selection == SelectionKind::AvailAware {
            cands.sort_by_key(|&n| std::cmp::Reverse(score(n)));
        }
        cands
    }

    /// The raw ring-distance-ordered cover candidates around `key`,
    /// regardless of the configured [`SelectionKind`]. The first entry
    /// is the presumptive owner-side replica a plain key route would
    /// reach — callers compare against it to decide whether re-ranking
    /// should divert from the baseline geometry at all.
    #[must_use]
    pub fn cover_candidates(&self, key: Id, k: usize) -> Vec<NodeIdx> {
        self.index.around(key, k, &self.ids)
    }

    /// Ground-truth closest joined live node to `key` (oracle; used by
    /// tests and instrumentation, never by protocol logic on the hot
    /// path).
    #[must_use]
    pub fn oracle_root(&self, key: Id) -> Option<NodeIdx> {
        if let Some(exact) = self.ring_get(key.0) {
            return Some(exact);
        }
        let mut best: Option<NodeIdx> = None;
        for n in self
            .ring_neighbors_cw(key, 1)
            .into_iter()
            .chain(self.ring_neighbors_ccw(key, 1))
        {
            best = match best {
                None => Some(n),
                Some(b) if self.ids[n.idx()].closer_to(key, self.ids[b.idx()]) => Some(n),
                keep => keep,
            };
        }
        best
    }

    // ------------------------------------------------------------ events

    /// Must be called when the engine reports `NodeUp`.
    pub fn node_up<A: Clone>(
        &mut self,
        eng: &mut OverlayEngine<A>,
        n: NodeIdx,
    ) -> Vec<OverlayEvent<A>> {
        // The node is back: disarm any detection timers still pending for
        // its previous session (cancelling a handle whose detector has
        // itself gone down is a harmless no-op).
        for (_, h) in self.fail_timers[n.idx()].drain(..) {
            eng.cancel_timer(h);
        }
        self.unlist_all(n);
        self.nodes[n.idx()].reset();
        self.stats.joins += 1;
        if self.joined_list.is_empty() {
            // First node: instant singleton network.
            return self.complete_join(eng, n);
        }
        self.start_join(eng, n);
        Vec::new()
    }

    fn start_join<A: Clone>(&mut self, eng: &mut OverlayEngine<A>, n: NodeIdx) {
        let bootstrap = self.joined_list[self.rng.gen_range(0..self.joined_list.len())];
        eng.send(
            n,
            bootstrap,
            OverlayMsg::JoinRequest { joiner: n, hops: 0 },
            wire::JOIN_REQUEST,
            TrafficClass::Overlay,
        );
        // Retry in case the request or reply is lost to churn; cancelled
        // on join completion (the engine cancels it automatically if the
        // node goes down first).
        self.join_retry[n.idx()] = Some(eng.set_timer(n, self.cfg.heartbeat * 2, TAG_JOIN_RETRY));
    }

    /// Must be called when the engine reports `NodeDown`.
    pub fn node_down<A: Clone>(&mut self, eng: &mut OverlayEngine<A>, n: NodeIdx) {
        let was_joined = self.nodes[n.idx()].joined;
        if was_joined {
            self.index.remove(n);
            if let Some(map) = &mut self.ring_map {
                map.remove(&self.ids[n.idx()].0);
            }
            let pos = self.joined_pos[n.idx()];
            if pos != NO_POS {
                self.joined_list.swap_remove(pos);
                if let Some(&moved) = self.joined_list.get(pos) {
                    self.joined_pos[moved.idx()] = pos;
                }
                self.joined_pos[n.idx()] = NO_POS;
            }
        }
        // Every node whose leafset lists `n` will notice after missing
        // heartbeats. The reverse index is authoritative here: leafset
        // views are asymmetric under churn, so `n`'s own view may omit
        // nodes that still list it (and would otherwise never detect).
        let watchers: Vec<u32> = self.listed_by[n.idx()].iter().copied().collect();
        for w in watchers {
            let m = NodeIdx(w);
            if eng.is_up(m) {
                let jitter =
                    Duration::from_micros(self.rng.gen_range(0..self.cfg.heartbeat.as_micros()));
                let h = eng.set_timer(m, self.cfg.detect_delay + jitter, TAG_FAIL | u64::from(n.0));
                self.fail_timers[n.idx()].push((w, h));
            }
        }
        // The engine auto-cancels n's own timers (join retry included).
        self.join_retry[n.idx()] = None;
        eng.set_standing(n, TrafficClass::Overlay, 0.0, 0.0);
        self.unlist_all(n);
        self.nodes[n.idx()].reset();
    }

    /// Must be called when the engine reports `PartitionStart`: every
    /// leafset edge straddling the boundary stops carrying heartbeats,
    /// so both sides arm the same detection timers a real failure would
    /// — except the watched nodes stay up, which is why
    /// the (internal) failure detector treats up-but-unreachable
    /// as failed.
    pub fn partition_started<A: Clone>(&mut self, eng: &mut OverlayEngine<A>, members: &[NodeIdx]) {
        let mut inside = vec![false; self.ids.len()];
        for m in members {
            inside[m.idx()] = true;
        }
        // Watchers outside the boundary stop hearing members' heartbeats.
        // (`listed_by` iterates in ascending order, keeping the jitter
        // draws deterministic.)
        for &m in members {
            let watchers: Vec<u32> = self.listed_by[m.idx()].iter().copied().collect();
            for w in watchers {
                if inside[w as usize] {
                    continue;
                }
                let d = NodeIdx(w);
                if !eng.is_up(d) {
                    continue;
                }
                let jitter =
                    Duration::from_micros(self.rng.gen_range(0..self.cfg.heartbeat.as_micros()));
                let h = eng.set_timer(d, self.cfg.detect_delay + jitter, TAG_FAIL | u64::from(m.0));
                self.fail_timers[m.idx()].push((w, h));
            }
        }
        // Members stop hearing the outsiders they watch.
        for &m in members {
            if !eng.is_up(m) {
                continue;
            }
            let watched: Vec<NodeIdx> = self.nodes[m.idx()].leafset().collect();
            for t in watched {
                if inside[t.idx()] {
                    continue;
                }
                let jitter =
                    Duration::from_micros(self.rng.gen_range(0..self.cfg.heartbeat.as_micros()));
                let h = eng.set_timer(m, self.cfg.detect_delay + jitter, TAG_FAIL | u64::from(t.0));
                self.fail_timers[t.idx()].push((m.0, h));
            }
        }
    }

    /// Must be called when the engine reports `PartitionEnd`: each live
    /// joined member converges its leafset back to the full ring and
    /// announces itself, so far-side nodes (which evicted the members
    /// after detection) re-admit them organically via
    /// `NeighborJoined` — which is also what re-triggers the metadata
    /// handover in the layer above. Detection timers still pending for
    /// boundary edges resolve themselves: `detect_failure` ignores
    /// reachable live nodes.
    pub fn partition_healed<A: Clone>(&mut self, eng: &mut OverlayEngine<A>, members: &[NodeIdx]) {
        for &m in members {
            if !eng.is_up(m) || !self.nodes[m.idx()].joined {
                continue;
            }
            self.stats.partition_repairs += 1;
            self.rebuild_leafset_where(m, &|x| eng.reachable(m, x));
            let ls = self.leafset_members(m);
            for &p in &ls {
                self.learn(m, p);
                eng.send(
                    m,
                    p,
                    OverlayMsg::Announce,
                    wire::ANNOUNCE,
                    TrafficClass::Overlay,
                );
            }
            self.update_heartbeat_rate(eng, m);
        }
    }

    /// Must be called for timers whose tag satisfies [`is_overlay_tag`].
    pub fn on_timer<A: Clone>(
        &mut self,
        eng: &mut OverlayEngine<A>,
        node: NodeIdx,
        tag: u64,
    ) -> Vec<OverlayEvent<A>> {
        if tag & TAG_FAIL == TAG_FAIL {
            let failed = NodeIdx((tag & TAG_PAYLOAD_MASK) as u32);
            let pending = &mut self.fail_timers[failed.idx()];
            if let Some(pos) = pending.iter().position(|&(d, _)| d == node.0) {
                pending.swap_remove(pos);
            }
            return self.detect_failure(eng, node, failed);
        }
        if tag & TAG_FAIL == TAG_LS_REFRESH {
            self.on_leafset_refresh(eng, node);
            return Vec::new();
        }
        if tag & TAG_JOIN_RETRY == TAG_JOIN_RETRY {
            self.join_retry[node.idx()] = None;
            // A retry firing after the join completed can't happen any
            // more: complete_join cancels the handle.
            debug_assert!(!self.nodes[node.idx()].joined);
            if self.joined_list.is_empty() {
                // Everyone else left while we were joining: become the
                // singleton network.
                return self.complete_join(eng, node);
            }
            self.stats.join_retries += 1;
            self.start_join(eng, node);
        }
        Vec::new()
    }

    /// Periodic leafset anti-entropy (MSPastry's leafset probing): pull
    /// one leafset member's leafset per period, rotating through the
    /// members. The push reply is merged via
    /// [`handle_announce`](Self::handle_announce), repairing asymmetric
    /// views — e.g. a neighbor whose join Announce was lost and who
    /// would otherwise stay invisible forever (heartbeats carry no
    /// membership).
    fn on_leafset_refresh<A: Clone>(&mut self, eng: &mut OverlayEngine<A>, n: NodeIdx) {
        if !eng.is_up(n) || !self.nodes[n.idx()].joined {
            return; // restarting; complete_join re-arms the probe
        }
        let members = self.leafset_members(n);
        if !members.is_empty() {
            let peer = members[self.refresh_pos[n.idx()] % members.len()];
            self.refresh_pos[n.idx()] = self.refresh_pos[n.idx()].wrapping_add(1);
            self.stats.leafset_refreshes += 1;
            eng.send(
                n,
                peer,
                OverlayMsg::LeafsetPull,
                wire::leafset_msg(1),
                TrafficClass::Overlay,
            );
        }
        self.arm_leafset_refresh(eng, n);
    }

    /// Arms `n`'s next anti-entropy probe, jittered so probes across the
    /// population stay desynchronised.
    fn arm_leafset_refresh<A: Clone>(&mut self, eng: &mut OverlayEngine<A>, n: NodeIdx) {
        let period = self.cfg.leafset_refresh;
        let jitter = Duration::from_micros(self.rng.gen_range(0..period.as_micros().max(4) / 4));
        eng.set_timer(n, period + jitter, TAG_LS_REFRESH);
    }

    fn detect_failure<A: Clone>(
        &mut self,
        eng: &mut OverlayEngine<A>,
        detector: NodeIdx,
        failed: NodeIdx,
    ) -> Vec<OverlayEvent<A>> {
        if eng.is_up(failed) && eng.reachable(detector, failed) {
            return Vec::new(); // came back before the timeout expired
        }
        if !self.nodes[detector.idx()].remove_from_leafset(failed) {
            return Vec::new(); // already repaired (or detector restarted)
        }
        self.listed_by[failed.idx()].remove(&detector.0);
        self.stats.leafset_repairs += 1;
        // Repair: converge the leafset to ground truth — restricted to
        // nodes the detector can actually reach, so a partitioned
        // detector does not "repair" its leafset with nodes on the far
        // side of the cut — charging the pull exchange the real protocol
        // performs against the farthest surviving neighbor (or nothing
        // if we are now alone).
        self.rebuild_leafset_where(detector, &|m| eng.reachable(detector, m));
        let peer = self.nodes[detector.idx()]
            .cw
            .last()
            .or(self.nodes[detector.idx()].ccw.last())
            .copied();
        if let Some(peer) = peer {
            eng.send(
                detector,
                peer,
                OverlayMsg::LeafsetPull,
                wire::leafset_msg(1),
                TrafficClass::Overlay,
            );
        }
        vec![OverlayEvent::NeighborFailed {
            node: detector,
            failed,
        }]
    }

    /// Must be called for every engine `Message` event; returns events
    /// for the application.
    pub fn on_message<A: Clone>(
        &mut self,
        eng: &mut OverlayEngine<A>,
        from: NodeIdx,
        to: NodeIdx,
        msg: OverlayMsg<A>,
    ) -> Vec<OverlayEvent<A>> {
        match msg {
            OverlayMsg::App(payload) => {
                vec![OverlayEvent::AppMessage {
                    node: to,
                    from,
                    payload,
                }]
            }
            OverlayMsg::Route {
                key,
                origin,
                hops,
                size,
                payload,
            } => {
                self.learn(to, from);
                self.forward_or_deliver(eng, to, key, origin, hops, size, payload)
            }
            OverlayMsg::JoinRequest { joiner, hops } => {
                self.learn(to, from);
                self.handle_join_request(eng, to, joiner, hops)
            }
            OverlayMsg::RtRow { entries } => {
                for e in entries {
                    self.learn(to, e);
                }
                Vec::new()
            }
            OverlayMsg::JoinReply { leafset: _ } => {
                if self.nodes[to.idx()].joined || !eng.is_up(to) {
                    return Vec::new(); // duplicate reply
                }
                self.complete_join(eng, to)
            }
            OverlayMsg::Announce => {
                // The announcer may have died while the message was in
                // flight; inserting it would plant a leafset entry that
                // no detection timer covers.
                if eng.is_up(from) {
                    self.handle_announce(to, from)
                } else {
                    Vec::new()
                }
            }
            OverlayMsg::LeafsetPull => {
                let members = self.leafset_members(to);
                let size = wire::leafset_msg(members.len());
                eng.send(
                    to,
                    from,
                    OverlayMsg::LeafsetPush { members },
                    size,
                    TrafficClass::Overlay,
                );
                Vec::new()
            }
            OverlayMsg::LeafsetPush { members } => {
                // Merge, not just learn: anti-entropy pulls repair
                // asymmetric leafset views. Dead members are skipped for
                // the same reason a stale Announce is (no detection timer
                // would cover the entry).
                let mut out = Vec::new();
                for m in members {
                    self.learn(to, m);
                    if eng.is_up(m) && self.nodes[m.idx()].joined {
                        out.extend(self.handle_announce(to, m));
                    }
                }
                out
            }
        }
    }

    // ------------------------------------------------------------ joins

    fn handle_join_request<A: Clone>(
        &mut self,
        eng: &mut OverlayEngine<A>,
        at: NodeIdx,
        joiner: NodeIdx,
        hops: u8,
    ) -> Vec<OverlayEvent<A>> {
        if !eng.is_up(joiner) {
            return Vec::new(); // joiner already gone
        }
        if !self.nodes[at.idx()].joined {
            // We restarted mid-route; bounce to some joined node if any.
            if let Some(&alt) = self.joined_list.first() {
                eng.send(
                    at,
                    alt,
                    OverlayMsg::JoinRequest {
                        joiner,
                        hops: hops.saturating_add(1),
                    },
                    wire::JOIN_REQUEST,
                    TrafficClass::Overlay,
                );
            }
            return Vec::new();
        }
        // Offer the joiner the routing-table row it will need at this
        // prefix depth, as in the Pastry join protocol.
        let joiner_id = self.ids[joiner.idx()];
        let at_id = self.ids[at.idx()];
        let row = at_id.prefix_len(joiner_id, self.cfg.b).min(self.rows - 1);
        let mut entries: Vec<NodeIdx> = self.nodes[at.idx()].rt
            [row * self.cols..(row + 1) * self.cols]
            .iter()
            .flatten()
            .copied()
            .collect();
        entries.push(at);
        let size = wire::rt_row(entries.len());
        eng.send(
            at,
            joiner,
            OverlayMsg::RtRow { entries },
            size,
            TrafficClass::Overlay,
        );

        match self.next_hop(eng, at, joiner_id) {
            Some(next) => {
                eng.send(
                    at,
                    next,
                    OverlayMsg::JoinRequest {
                        joiner,
                        hops: hops.saturating_add(1),
                    },
                    wire::JOIN_REQUEST,
                    TrafficClass::Overlay,
                );
            }
            None => {
                // We are the joiner's root: complete the join.
                let leafset = self.leafset_members(at);
                let size = wire::leafset_msg(leafset.len() + 1);
                eng.send(
                    at,
                    joiner,
                    OverlayMsg::JoinReply { leafset },
                    size,
                    TrafficClass::Overlay,
                );
            }
        }
        Vec::new()
    }

    /// Finishes a join: install the ground-truth leafset (charged via the
    /// join exchange that just happened), announce to the new neighbors,
    /// register heartbeat traffic.
    fn complete_join<A: Clone>(
        &mut self,
        eng: &mut OverlayEngine<A>,
        n: NodeIdx,
    ) -> Vec<OverlayEvent<A>> {
        debug_assert!(!self.nodes[n.idx()].joined);
        if let Some(h) = self.join_retry[n.idx()].take() {
            eng.cancel_timer(h);
        }
        // A node joining during a partition must not seed its leafset
        // with unreachable far-side members.
        self.rebuild_leafset_where(n, &|m| eng.reachable(n, m));
        self.nodes[n.idx()].joined = true;
        self.index.insert(n);
        if let Some(map) = &mut self.ring_map {
            map.insert(self.ids[n.idx()].0, n);
        }
        self.joined_pos[n.idx()] = self.joined_list.len();
        self.joined_list.push(n);

        let members = self.leafset_members(n);
        for &m in &members {
            self.learn(n, m);
            eng.send(
                n,
                m,
                OverlayMsg::Announce,
                wire::ANNOUNCE,
                TrafficClass::Overlay,
            );
        }
        self.update_heartbeat_rate(eng, n);
        self.arm_leafset_refresh(eng, n);
        vec![OverlayEvent::Joined { node: n }]
    }

    fn handle_announce<A: Clone>(&mut self, at: NodeIdx, joined: NodeIdx) -> Vec<OverlayEvent<A>> {
        if !self.nodes[at.idx()].joined {
            return Vec::new();
        }
        self.learn(at, joined);
        let leafset_changed = self.leafset_insert(at, joined);
        if leafset_changed {
            vec![OverlayEvent::NeighborJoined { node: at, joined }]
        } else {
            Vec::new()
        }
    }

    // --------------------------------------------------------- leafsets

    /// Rebuilds `n`'s leafset from the ground-truth ring (hybrid
    /// convergence; the caller charges the protocol messages), restricted
    /// to ring members satisfying `keep` — used to exclude nodes across
    /// an open partition boundary, which are joined and live but
    /// unreachable.
    fn rebuild_leafset_where(&mut self, n: NodeIdx, keep: &dyn Fn(NodeIdx) -> bool) {
        let old: Vec<NodeIdx> = self.nodes[n.idx()].leafset().collect();
        let half = self.cfg.leafset / 2;
        let id = self.ids[n.idx()];
        let cw = self.ring_neighbors_cw_where(id, half, keep);
        let ccw = self.ring_neighbors_ccw_where(id, half, keep);
        let st = &mut self.nodes[n.idx()];
        st.cw = cw.into_iter().filter(|&m| m != n).collect();
        st.ccw = ccw.into_iter().filter(|&m| m != n).collect();
        self.reindex_leafset(n, &old);
    }

    /// Reverse-index bookkeeping after `n`'s leafset changed: drops the
    /// entries for the pre-change members (`old`) and records the current
    /// ones.
    fn reindex_leafset(&mut self, n: NodeIdx, old: &[NodeIdx]) {
        for m in old {
            self.listed_by[m.idx()].remove(&n.0);
        }
        let new: Vec<NodeIdx> = self.nodes[n.idx()].leafset().collect();
        for m in new {
            self.listed_by[m.idx()].insert(n.0);
        }
    }

    /// Drops every reverse-index entry held on behalf of `n`'s leafset
    /// (called before the leafset is cleared on restart/shutdown).
    fn unlist_all(&mut self, n: NodeIdx) {
        let members: Vec<NodeIdx> = self.nodes[n.idx()].leafset().collect();
        for m in members {
            self.listed_by[m.idx()].remove(&n.0);
        }
    }

    /// Inserts `x` into `n`'s leafset halves if it is among the l/2
    /// nearest on either side. Returns true if the leafset changed.
    fn leafset_insert(&mut self, n: NodeIdx, x: NodeIdx) -> bool {
        if n == x {
            return false;
        }
        let old: Vec<NodeIdx> = self.nodes[n.idx()].leafset().collect();
        let half = self.cfg.leafset / 2;
        let id = self.ids[n.idx()];
        let xid = self.ids[x.idx()];
        let mut changed = false;
        let ids = &self.ids;
        let st = &mut self.nodes[n.idx()];
        if !st.cw.contains(&x) {
            let pos = st
                .cw
                .iter()
                .position(|&m| id.cw_dist(xid) < id.cw_dist(ids[m.idx()]))
                .unwrap_or(st.cw.len());
            if pos < half {
                st.cw.insert(pos, x);
                st.cw.truncate(half);
                changed = true;
            }
        }
        if !st.ccw.contains(&x) {
            let pos = st
                .ccw
                .iter()
                .position(|&m| id.ccw_dist(xid) < id.ccw_dist(ids[m.idx()]))
                .unwrap_or(st.ccw.len());
            if pos < half {
                st.ccw.insert(pos, x);
                st.ccw.truncate(half);
                changed = true;
            }
        }
        if changed {
            self.reindex_leafset(n, &old);
        }
        changed
    }

    /// The live ring index (always maintained, whatever the layout).
    /// The protocol layer uses its universe scans for range enumeration.
    #[must_use]
    pub fn ring_index(&self) -> &RingIndex {
        &self.index
    }

    /// Exact live lookup, dispatched on the configured layout.
    fn ring_get(&self, key: u128) -> Option<NodeIdx> {
        match &self.ring_map {
            Some(map) => map.get(&key).copied(),
            None => self.index.get_live(key),
        }
    }

    /// Takes the first `count` walk results that are not the exact key
    /// and satisfy `keep` (shared tail of the cw/ccw walks).
    fn take_neighbors(
        &self,
        walk: impl Iterator<Item = NodeIdx>,
        id: Id,
        count: usize,
        keep: &dyn Fn(NodeIdx) -> bool,
    ) -> Vec<NodeIdx> {
        let mut out = Vec::with_capacity(count);
        for n in walk {
            if out.len() >= count {
                break;
            }
            if self.ids[n.idx()] != id && keep(n) {
                out.push(n);
            }
        }
        out
    }

    /// Nearest joined live nodes clockwise from `id` (excluding the exact
    /// key match).
    fn ring_neighbors_cw(&self, id: Id, count: usize) -> Vec<NodeIdx> {
        self.ring_neighbors_cw_where(id, count, &|_| true)
    }

    fn ring_neighbors_cw_where(
        &self,
        id: Id,
        count: usize,
        keep: &dyn Fn(NodeIdx) -> bool,
    ) -> Vec<NodeIdx> {
        if self.index.live_count() == 0 || count == 0 {
            return Vec::new();
        }
        match &self.ring_map {
            Some(map) => self.take_neighbors(
                map.range((id.0.wrapping_add(1))..)
                    .chain(map.range(..=id.0))
                    .map(|(_, &n)| n),
                id,
                count,
                keep,
            ),
            None => self.take_neighbors(self.index.cw_live_from(id), id, count, keep),
        }
    }

    fn ring_neighbors_ccw(&self, id: Id, count: usize) -> Vec<NodeIdx> {
        self.ring_neighbors_ccw_where(id, count, &|_| true)
    }

    fn ring_neighbors_ccw_where(
        &self,
        id: Id,
        count: usize,
        keep: &dyn Fn(NodeIdx) -> bool,
    ) -> Vec<NodeIdx> {
        if self.index.live_count() == 0 || count == 0 {
            return Vec::new();
        }
        match &self.ring_map {
            Some(map) => self.take_neighbors(
                map.range(..id.0)
                    .rev()
                    .chain(map.range(id.0..).rev())
                    .map(|(_, &n)| n),
                id,
                count,
                keep,
            ),
            None => self.take_neighbors(self.index.ccw_live_from(id), id, count, keep),
        }
    }

    fn update_heartbeat_rate<A: Clone>(&self, eng: &mut OverlayEngine<A>, n: NodeIdx) {
        let l = self.leafset_members(n).len() as f32;
        let rate = l * wire::HEARTBEAT as f32 / self.cfg.heartbeat.as_secs_f64() as f32;
        eng.set_standing(n, TrafficClass::Overlay, rate, rate);
    }

    // ---------------------------------------------------------- routing

    /// Injects a message to be routed to the live node closest to `key`.
    /// `size` is the application payload size (per-hop overhead added).
    /// Returns delivery events immediately if the sender is itself the
    /// root.
    pub fn route<A: Clone>(
        &mut self,
        eng: &mut OverlayEngine<A>,
        from: NodeIdx,
        key: Id,
        payload: A,
        size: u32,
        class: TrafficClass,
    ) -> Vec<OverlayEvent<A>> {
        self.stats.routed_messages += 1;
        let _ = class; // routed traffic is always accounted as Query class
        self.forward_or_deliver(eng, from, key, from, 0, size, payload)
    }

    /// Sends a direct application message to a known endsystem.
    pub fn send_app<A: Clone>(
        &mut self,
        eng: &mut OverlayEngine<A>,
        from: NodeIdx,
        to: NodeIdx,
        payload: A,
        size: u32,
        class: TrafficClass,
    ) {
        eng.send(
            from,
            to,
            OverlayMsg::App(payload),
            wire::HEADER + size,
            class,
        );
    }

    /// Sends one direct application message to every destination in
    /// `dests`, sharing a single payload allocation across all of them
    /// (see [`seaweed_sim::Engine::multicast`]). Byte-identical event
    /// order and accounting to calling [`Overlay::send_app`] once per
    /// destination.
    pub fn multicast_app<A: Clone>(
        &mut self,
        eng: &mut OverlayEngine<A>,
        from: NodeIdx,
        dests: &[NodeIdx],
        payload: A,
        size: u32,
        class: TrafficClass,
    ) {
        eng.multicast(
            from,
            dests,
            OverlayMsg::App(payload),
            wire::HEADER + size,
            class,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn forward_or_deliver<A: Clone>(
        &mut self,
        eng: &mut OverlayEngine<A>,
        at: NodeIdx,
        key: Id,
        origin: NodeIdx,
        hops: u8,
        size: u32,
        payload: A,
    ) -> Vec<OverlayEvent<A>> {
        const MAX_HOPS: u8 = 128;
        let next = if hops >= MAX_HOPS {
            None
        } else {
            self.next_hop(eng, at, key)
        };
        match next {
            Some(next) => {
                eng.send(
                    at,
                    next,
                    OverlayMsg::Route {
                        key,
                        origin,
                        hops: hops + 1,
                        size,
                        payload,
                    },
                    size + wire::ROUTE_OVERHEAD,
                    TrafficClass::Query,
                );
                Vec::new()
            }
            None => {
                self.stats.delivered_messages += 1;
                self.stats.total_hops += u64::from(hops);
                self.stats.max_hops = self.stats.max_hops.max(hops);
                vec![OverlayEvent::Deliver {
                    node: at,
                    key,
                    origin,
                    hops,
                    payload,
                }]
            }
        }
    }

    /// Greedy prefix/proximity routing step: the known node strictly
    /// ring-closer to `key` than `at`, preferring the routing-table entry
    /// for the next digit. Entries pointing at departed nodes are probed,
    /// purged and charged, modelling MSPastry's per-hop retransmission.
    /// `None` means `at` believes it is the root.
    fn next_hop<A: Clone>(
        &mut self,
        eng: &mut OverlayEngine<A>,
        at: NodeIdx,
        key: Id,
    ) -> Option<NodeIdx> {
        let at_id = self.ids[at.idx()];
        if at_id == key {
            return None;
        }
        loop {
            let cand = self.best_candidate(at, key)?;
            if eng.is_up(cand) && self.nodes[cand.idx()].joined {
                return Some(cand);
            }
            // Stale entry: charge a probe, purge, try again.
            self.stats.probes += 1;
            eng.record_probe(at, wire::PROBE);
            self.purge(at, cand);
        }
    }

    /// Best known strictly-closer candidate, or `None` if none is closer
    /// (i.e. we are locally the root). Prefers the Pastry routing-table
    /// entry matching the key's next digit, then falls back to the
    /// numerically closest known node.
    fn best_candidate(&self, at: NodeIdx, key: Id) -> Option<NodeIdx> {
        let at_id = self.ids[at.idx()];
        let my_dist = at_id.ring_dist(key);
        let st = &self.nodes[at.idx()];
        // Preferred: the routing-table entry for the next digit.
        let row = at_id.prefix_len(key, self.cfg.b);
        if row < self.rows {
            let col = key.digit(row, self.cfg.b) as usize;
            if let Some(e) = st.rt[row * self.cols + col] {
                if self.ids[e.idx()].ring_dist(key) < my_dist {
                    return Some(e);
                }
            }
        }
        // Fallback: closest of leafset + routing table.
        let mut best: Option<(NodeIdx, u128)> = None;
        let consider = |best: &mut Option<(NodeIdx, u128)>, m: NodeIdx| {
            let d = self.ids[m.idx()].ring_dist(key);
            match best {
                None => *best = Some((m, d)),
                Some((_, bd)) if d < *bd => *best = Some((m, d)),
                _ => {}
            }
        };
        for m in st.leafset() {
            consider(&mut best, m);
        }
        for e in st.rt.iter().flatten() {
            consider(&mut best, *e);
        }
        match best {
            Some((m, d)) if d < my_dist => Some(m),
            _ => None,
        }
    }

    /// Learns that `m` exists (routing-table fill from observed traffic,
    /// as in Pastry).
    fn learn(&mut self, at: NodeIdx, m: NodeIdx) {
        if at == m {
            return;
        }
        let at_id = self.ids[at.idx()];
        let m_id = self.ids[m.idx()];
        let row = at_id.prefix_len(m_id, self.cfg.b);
        if row >= self.rows {
            return;
        }
        let col = m_id.digit(row, self.cfg.b) as usize;
        let slot = &mut self.nodes[at.idx()].rt[row * self.cols + col];
        if slot.is_none() {
            *slot = Some(m);
        }
    }

    /// Drops every reference `at` holds to `gone`.
    fn purge(&mut self, at: NodeIdx, gone: NodeIdx) {
        let st = &mut self.nodes[at.idx()];
        let removed = st.remove_from_leafset(gone);
        for e in st.rt.iter_mut() {
            if *e == Some(gone) {
                *e = None;
            }
        }
        if removed {
            self.listed_by[gone.idx()].remove(&at.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaweed_sim::{Event, SimConfig, UniformTopology};
    use seaweed_types::Time;

    type Eng = OverlayEngine<u64>;

    /// Drives engine + overlay until quiescent (or horizon), collecting
    /// app-facing events.
    fn drive(eng: &mut Eng, ov: &mut Overlay, horizon: Time) -> Vec<OverlayEvent<u64>> {
        let mut out = Vec::new();
        while let Some((_, ev)) = eng.next_event_before(horizon) {
            match ev {
                Event::Message { from, to, payload } => {
                    out.extend(ov.on_message(eng, from, to, payload.into_owned()));
                }
                Event::Timer { node, tag } if is_overlay_tag(tag) => {
                    out.extend(ov.on_timer(eng, node, tag));
                }
                Event::Timer { .. } => {}
                Event::NodeUp { node } => out.extend(ov.node_up(eng, node)),
                Event::NodeDown { node } => ov.node_down(eng, node),
                Event::NodeCrash { node } => ov.node_down(eng, node),
                Event::PartitionStart { partition } => {
                    let members = eng.partition_members(partition);
                    ov.partition_started(eng, &members);
                }
                Event::PartitionEnd { partition } => {
                    let members = eng.partition_members(partition);
                    ov.partition_healed(eng, &members);
                }
            }
        }
        out
    }

    fn build(n: usize, seed: u64) -> (Eng, Overlay) {
        let eng: Eng = Engine::new(
            Box::new(UniformTopology::new(n, Duration::from_millis(5))),
            SimConfig::default(),
        );
        let ov = Overlay::new(
            Overlay::random_ids(n, seed),
            OverlayConfig {
                seed,
                ..Default::default()
            },
        );
        (eng, ov)
    }

    /// Brings all nodes up at staggered times and drains events.
    fn bootstrap_all(eng: &mut Eng, ov: &mut Overlay, n: usize) -> Vec<OverlayEvent<u64>> {
        for i in 0..n {
            eng.schedule_up(Time::from_micros(i as u64 * 1_000_000), NodeIdx(i as u32));
        }
        drive(eng, ov, Time::ZERO + Duration::from_hours(1))
    }

    #[test]
    fn all_nodes_join() {
        let n = 40;
        let (mut eng, mut ov) = build(n, 1);
        let events = bootstrap_all(&mut eng, &mut ov, n);
        let joined = events
            .iter()
            .filter(|e| matches!(e, OverlayEvent::Joined { .. }))
            .count();
        assert_eq!(joined, n);
        assert_eq!(ov.num_joined(), n);
    }

    #[test]
    fn leafsets_hold_true_neighbors() {
        let n = 30;
        let (mut eng, mut ov) = build(n, 2);
        bootstrap_all(&mut eng, &mut ov, n);
        // Sort nodes by id to find true ring neighbors.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| ov.ids()[i].0);
        for (pos, &i) in order.iter().enumerate() {
            let succ = NodeIdx(order[(pos + 1) % n] as u32);
            let pred = NodeIdx(order[(pos + n - 1) % n] as u32);
            let node = NodeIdx(i as u32);
            let members = ov.leafset_members(node);
            assert!(members.contains(&succ), "node {i} missing successor");
            assert!(members.contains(&pred), "node {i} missing predecessor");
        }
    }

    #[test]
    fn routing_reaches_the_root() {
        let n = 50;
        let (mut eng, mut ov) = build(n, 3);
        bootstrap_all(&mut eng, &mut ov, n);
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..50u64 {
            let key = Id::random(&mut rng);
            let from = NodeIdx((trial % n as u64) as u32);
            let mut evs = ov.route(&mut eng, from, key, trial, 100, TrafficClass::Query);
            let horizon = eng.now() + Duration::from_mins(5);
            evs.extend(drive(&mut eng, &mut ov, horizon));
            let delivered: Vec<_> = evs
                .iter()
                .filter_map(|e| match e {
                    OverlayEvent::Deliver {
                        node,
                        key: k,
                        payload,
                        ..
                    } if *k == key => Some((*node, *payload)),
                    _ => None,
                })
                .collect();
            assert_eq!(delivered.len(), 1, "trial {trial}");
            let (node, payload) = delivered[0];
            assert_eq!(payload, trial);
            assert_eq!(
                Some(node),
                ov.oracle_root(key),
                "trial {trial} landed off-root"
            );
        }
    }

    #[test]
    fn routing_hops_are_logarithmic() {
        let n = 200;
        let (mut eng, mut ov) = build(n, 4);
        bootstrap_all(&mut eng, &mut ov, n);
        let mut rng = StdRng::seed_from_u64(9);
        for t in 0..100u64 {
            let key = Id::random(&mut rng);
            let from = NodeIdx(rng.gen_range(0..n as u32));
            let evs = ov.route(&mut eng, from, key, t, 50, TrafficClass::Query);
            drop(evs);
            let horizon = eng.now() + Duration::from_mins(5);
            drive(&mut eng, &mut ov, horizon);
        }
        assert_eq!(ov.stats.delivered_messages, 100);
        let mean_hops = ov.stats.total_hops as f64 / ov.stats.delivered_messages as f64;
        // log_16(200) ~ 1.9; allow generous slack for sparse tables.
        assert!(mean_hops < 6.0, "mean hops {mean_hops}");
        assert!(ov.stats.max_hops < 30, "max hops {}", ov.stats.max_hops);
    }

    #[test]
    fn failure_detection_repairs_leafsets() {
        let n = 20;
        let (mut eng, mut ov) = build(n, 5);
        bootstrap_all(&mut eng, &mut ov, n);
        let victim = NodeIdx(7);
        let t_down = eng.now() + Duration::from_secs(10);
        eng.schedule_down(t_down, victim);
        let evs = drive(&mut eng, &mut ov, t_down + Duration::from_mins(10));
        let failures: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                OverlayEvent::NeighborFailed { node, failed } if *failed == victim => Some(*node),
                _ => None,
            })
            .collect();
        assert!(!failures.is_empty(), "no neighbor detected the failure");
        // No surviving node still lists the victim.
        for i in 0..n {
            if i == victim.idx() {
                continue;
            }
            assert!(
                !ov.leafset_members(NodeIdx(i as u32)).contains(&victim),
                "node {i} still lists the victim"
            );
        }
        assert!(ov.stats.leafset_repairs > 0);
    }

    #[test]
    fn rejoin_after_failure_works() {
        let n = 15;
        let (mut eng, mut ov) = build(n, 6);
        bootstrap_all(&mut eng, &mut ov, n);
        let victim = NodeIdx(3);
        let t1 = eng.now() + Duration::from_secs(5);
        eng.schedule_down(t1, victim);
        eng.schedule_up(t1 + Duration::from_mins(30), victim);
        let evs = drive(&mut eng, &mut ov, t1 + Duration::from_hours(1));
        let rejoined = evs
            .iter()
            .any(|e| matches!(e, OverlayEvent::Joined { node } if *node == victim));
        assert!(rejoined);
        assert!(ov.is_joined(victim));
        assert_eq!(ov.num_joined(), n);
    }

    #[test]
    fn routing_around_undetected_failures() {
        // Kill a node and immediately route a key it owned, before any
        // detection timer fires: the message must still reach the best
        // surviving node.
        let n = 30;
        let (mut eng, mut ov) = build(n, 8);
        bootstrap_all(&mut eng, &mut ov, n);
        let victim = NodeIdx(11);
        let key = ov.id_of(victim); // exactly the victim's id
        let t1 = eng.now() + Duration::from_secs(1);
        eng.schedule_down(t1, victim);
        // Drain just the NodeDown.
        let _ = drive(&mut eng, &mut ov, t1);
        let from = NodeIdx(0);
        let mut evs = ov.route(&mut eng, from, key, 99, 10, TrafficClass::Query);
        evs.extend(drive(&mut eng, &mut ov, t1 + Duration::from_secs(20)));
        let delivered: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                OverlayEvent::Deliver { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(delivered.len(), 1);
        assert_ne!(delivered[0], victim);
        assert_eq!(Some(delivered[0]), ov.oracle_root(key));
        assert!(ov.stats.probes > 0, "expected stale-entry probes");
    }

    #[test]
    fn replica_set_is_ring_closest() {
        let n = 25;
        let (mut eng, mut ov) = build(n, 10);
        bootstrap_all(&mut eng, &mut ov, n);
        let x = NodeIdx(5);
        let rs = ov.replica_set(x, 8);
        assert_eq!(rs.len(), 8);
        assert!(!rs.contains(&x));
        // The replica set is the converged leafset: the 4 nearest live
        // nodes on each side of x in id order.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| ov.ids()[i as usize].0);
        let pos = order.iter().position(|&i| i == x.0).unwrap();
        let mut expected: Vec<NodeIdx> = Vec::new();
        for d in 1..=4usize {
            expected.push(NodeIdx(order[(pos + d) % n]));
            expected.push(NodeIdx(order[(pos + n - d) % n]));
        }
        let mut rs_sorted: Vec<u32> = rs.iter().map(|m| m.0).collect();
        let mut exp_sorted: Vec<u32> = expected.iter().map(|m| m.0).collect();
        rs_sorted.sort_unstable();
        exp_sorted.sort_unstable();
        assert_eq!(rs_sorted, exp_sorted);
    }

    #[test]
    fn responsible_ranges_partition_namespace() {
        let n = 20;
        let (mut eng, mut ov) = build(n, 11);
        bootstrap_all(&mut eng, &mut ov, n);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..200 {
            let probe = Id::random(&mut rng);
            let owners: Vec<_> = (0..n as u32)
                .map(NodeIdx)
                .filter(|&m| ov.responsible_range(m).contains(probe))
                .collect();
            assert_eq!(owners.len(), 1, "probe {probe:?} owned by {owners:?}");
            assert_eq!(Some(owners[0]), ov.oracle_root(probe));
        }
    }

    #[test]
    fn app_messages_pass_through() {
        let (mut eng, mut ov) = build(2, 12);
        bootstrap_all(&mut eng, &mut ov, 2);
        ov.send_app(
            &mut eng,
            NodeIdx(0),
            NodeIdx(1),
            42,
            100,
            TrafficClass::Query,
        );
        let horizon = eng.now() + Duration::from_secs(5);
        let evs = drive(&mut eng, &mut ov, horizon);
        assert!(evs.iter().any(|e| matches!(
            e,
            OverlayEvent::AppMessage {
                node: NodeIdx(1),
                from: NodeIdx(0),
                payload: 42
            }
        )));
    }

    #[test]
    fn heartbeat_traffic_is_metered() {
        let n = 10;
        let (mut eng, mut ov) = build(n, 13);
        bootstrap_all(&mut eng, &mut ov, n);
        // Run 4 quiet hours; overlay standing traffic should accumulate.
        let end = Time::ZERO + Duration::from_hours(5);
        let _ = drive(&mut eng, &mut ov, end);
        let report = eng.finish();
        let overlay_bps = report.mean_tx_per_online_bps(TrafficClass::Overlay);
        // 8 members (n-1=9 capped at l=8) * 56 B / 30 s ≈ 15 B/s; joins
        // add a little. Assert the right ballpark.
        assert!(
            (5.0..40.0).contains(&overlay_bps),
            "overlay {overlay_bps} B/s"
        );
    }
}
