#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
//! A Pastry structured overlay (MSPastry-style) running on the simulator.
//!
//! Seaweed is built on Pastry [Rowstron & Druschel, Middleware 2001] via
//! the MSPastry implementation's key-based routing API (paper §3.1). This
//! crate implements the overlay the way the paper configures it: ids are
//! 128-bit, digits are base 2^b with b = 4, the leafset holds l = 8
//! neighbors (4 clockwise, 4 counter-clockwise), leafset liveness is
//! maintained by 30-second heartbeats, and prefix routing delivers any
//! message to the live endsystem numerically closest to its key in
//! O(log_2^b N) hops.
//!
//! ## Fidelity model
//!
//! The simulation is monolithic, so the overlay keeps all node state in
//! one place and applies two documented hybrid shortcuts (DESIGN.md §3):
//!
//! * **Heartbeats are metered, not simulated.** Each joined node registers
//!   standing Overlay-class traffic of `l × HEARTBEAT / period` bytes/sec
//!   in each direction. Failure *detection* — the only protocol-visible
//!   effect of heartbeats — is modelled by per-neighbor detection timers
//!   armed when a node actually fails (one heartbeat period + spread).
//!   Event-per-beat simulation of 20k nodes × 4 weeks would be ~10⁹ events
//!   that change no protocol decision.
//! * **Membership repair converges to ground truth, costs protocol
//!   messages.** When a node repairs its leafset (after detecting a
//!   failure, or when seeding a joiner), the new member set is computed
//!   from the true live membership, and the repair/bootstrap messages the
//!   real protocol would exchange are charged to the bandwidth recorder.
//!   MSPastry's leafsets converge within a round-trip under churn
//!   [Castro et al., DSN 2004]; this collapses that round-trip while
//!   keeping both the traffic and the *detection latency* (during which
//!   stale leafsets really do contain dead nodes) faithful.
//!
//! Routing itself is fully protocol-driven: per-hop messages through each
//! node's own routing table and leafset view, including routing around
//! entries that point at departed nodes (charging probe traffic for each
//! stale entry encountered, as MSPastry's per-hop acknowledgements do).

pub mod node;
pub mod overlay;
pub mod ring;
pub mod wire;

pub use node::NodeState;
pub use overlay::{
    is_overlay_tag, Overlay, OverlayConfig, OverlayEngine, OverlayEvent, OverlayMsg, OverlayStats,
    SelectionKind,
};
pub use ring::{LayoutKind, RingIndex};
