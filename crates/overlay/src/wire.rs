//! Wire-size model for overlay messages.
//!
//! The simulator charges every message a byte count; these constants model
//! a compact binary encoding (16-byte ids, 4-byte endsystem addresses,
//! IP/UDP framing) in line with MSPastry's reported low overhead.

/// IP + UDP + Pastry framing per message.
pub const HEADER: u32 = 40;

/// One `(endsystemId, address)` table entry.
pub const ENTRY: u32 = 20;

/// Leafset heartbeat (header + sender id).
pub const HEARTBEAT: u32 = 56;

/// A liveness probe / ack used when routing around a stale entry.
pub const PROBE: u32 = 50;

/// Join request (header + joiner id/address).
pub const JOIN_REQUEST: u32 = HEADER + ENTRY;

/// One routing-table row sent to a joiner.
#[must_use]
pub fn rt_row(entries: usize) -> u32 {
    HEADER + 2 + ENTRY * entries as u32
}

/// Join reply / leafset push carrying `n` members.
#[must_use]
pub fn leafset_msg(n: usize) -> u32 {
    HEADER + ENTRY * n as u32
}

/// Announce of a newly joined node (header + its entry).
pub const ANNOUNCE: u32 = HEADER + ENTRY;

/// Per-hop overhead added to a routed application payload.
pub const ROUTE_OVERHEAD: u32 = HEADER + 17; // key + hop counter
