//! Sorted-vector ring index: the arena/SoA replacement for the
//! `BTreeMap<u128, NodeIdx>` ground-truth ring.
//!
//! The endsystem population is fixed for the lifetime of a run (ids
//! persist across availability sessions), so the index precomputes a
//! *static universe* — every id sorted ascending, with its node — and
//! tracks joined/live membership in a bitset over the sorted ranks.
//! Lookups are a binary search, successor/predecessor walks are bit
//! scans over adjacent words, and range enumeration is a pair of slice
//! iterations with zero allocation. At Farsite scale (51,663
//! endsystems) the whole index is ~1.6 MB of contiguous memory versus a
//! pointer-chased B-tree of 128-bit keys.
//!
//! Walk order reproduces the retained map implementation exactly:
//! clockwise from `id` visits ids in `(id..]` wrapping, ascending;
//! counter-clockwise visits `[..id)` descending then wraps. One benign
//! divergence is documented on [`RingIndex::cw_live_from`]: the map
//! backend double-visits the ring when `id == u128::MAX` (its
//! `wrapping_add(1)` overflows to an all-covering range chain); the
//! index visits each member once. Ids are uniform random 128-bit
//! values, so the colliding key has probability 2^-128 per run.

use seaweed_sim::NodeIdx;
use seaweed_types::{Id, IdRange};

/// Hot-state container layout selector, read by both the overlay and the
/// protocol layer above it (mirroring how `SchedulerKind` selects the
/// timer backend). `Map` retains the original BTreeMap-keyed containers
/// as the equivalence baseline; `Arena` is the dense layout. The
/// `layout_equivalence` proptest pins event logs and BandwidthReports
/// byte-identical between the two under the full chaos plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LayoutKind {
    /// 128-bit-id-keyed `BTreeMap` containers (the original
    /// implementation, retained as the determinism baseline).
    Map,
    /// Sorted-vec ring index plus dense per-node / per-query slabs.
    #[default]
    Arena,
}

/// The static sorted universe of endsystem ids plus a live-membership
/// bitset. See the module docs for the layout rationale.
pub struct RingIndex {
    /// All endsystem ids, ascending. Immutable after construction.
    keys: Vec<u128>,
    /// `nodes[rank]` is the endsystem owning `keys[rank]`.
    nodes: Vec<NodeIdx>,
    /// `rank_of[node]` is the node's rank in `keys`.
    rank_of: Vec<u32>,
    /// Joined-live membership bitset over ranks.
    words: Vec<u64>,
    /// Number of set bits in `words`.
    live: usize,
}

impl std::fmt::Debug for RingIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingIndex")
            .field("universe", &self.keys.len())
            .field("live", &self.live)
            .finish()
    }
}

impl RingIndex {
    /// Builds the index over a fixed id assignment. All nodes start
    /// non-member (down).
    ///
    /// # Panics
    /// Panics if two endsystems share an id — the circular namespace
    /// requires unique points.
    #[must_use]
    pub fn new(ids: &[Id]) -> Self {
        let mut order: Vec<u32> = (0..ids.len() as u32).collect();
        order.sort_unstable_by_key(|&i| ids[i as usize].0);
        let keys: Vec<u128> = order.iter().map(|&i| ids[i as usize].0).collect();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "endsystem ids must be unique"
        );
        let nodes: Vec<NodeIdx> = order.iter().map(|&i| NodeIdx(i)).collect();
        let mut rank_of = vec![0u32; ids.len()];
        for (rank, &n) in nodes.iter().enumerate() {
            rank_of[n.idx()] = rank as u32;
        }
        RingIndex {
            words: vec![0u64; keys.len().div_ceil(64)],
            keys,
            nodes,
            rank_of,
            live: 0,
        }
    }

    /// Number of endsystems in the universe (member or not).
    #[must_use]
    pub fn universe_len(&self) -> usize {
        self.keys.len()
    }

    /// Number of joined live members.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Marks `n` as a joined live member.
    pub fn insert(&mut self, n: NodeIdx) {
        let rank = self.rank_of[n.idx()] as usize;
        let bit = 1u64 << (rank % 64);
        if self.words[rank / 64] & bit == 0 {
            self.words[rank / 64] |= bit;
            self.live += 1;
        }
    }

    /// Clears `n`'s membership.
    pub fn remove(&mut self, n: NodeIdx) {
        let rank = self.rank_of[n.idx()] as usize;
        let bit = 1u64 << (rank % 64);
        if self.words[rank / 64] & bit != 0 {
            self.words[rank / 64] &= !bit;
            self.live -= 1;
        }
    }

    /// The live member owning exactly `key`, if any.
    #[must_use]
    pub fn get_live(&self, key: u128) -> Option<NodeIdx> {
        let rank = self.keys.binary_search(&key).ok()?;
        (self.words[rank / 64] & (1u64 << (rank % 64)) != 0).then(|| self.nodes[rank])
    }

    /// Live members clockwise from `id`: ids strictly greater than `id`
    /// ascending, then wrapping through the smallest ids up to and
    /// including an exact match (which callers skip, as the map walk
    /// did). Matches the retained `range((id+1)..).chain(range(..=id))`
    /// order; see the module docs for the `id == u128::MAX` divergence.
    pub fn cw_live_from(&self, id: Id) -> impl Iterator<Item = NodeIdx> + '_ {
        let split = self.keys.partition_point(|&k| k <= id.0);
        SetRanksFwd::new(&self.words, split, self.keys.len())
            .chain(SetRanksFwd::new(&self.words, 0, split))
            .map(move |rank| self.nodes[rank])
    }

    /// Live members counter-clockwise from `id`: ids strictly smaller
    /// than `id` descending, then wrapping through the largest ids down
    /// to an exact match. Matches `range(..id).rev().chain(range(id..)
    /// .rev())`.
    pub fn ccw_live_from(&self, id: Id) -> impl Iterator<Item = NodeIdx> + '_ {
        let split = self.keys.partition_point(|&k| k < id.0);
        SetRanksRev::new(&self.words, 0, split)
            .chain(SetRanksRev::new(&self.words, split, self.keys.len()))
            .map(move |rank| self.nodes[rank])
    }

    /// The `k` endsystems (member or not) ring-closest to `key`, ordered
    /// by ring distance with the smaller id breaking ties — the namespace
    /// *universe* around a point, for callers whose replicated metadata
    /// knows ids regardless of current liveness (replica selection).
    #[must_use]
    pub fn around(&self, key: Id, k: usize, ids: &[Id]) -> Vec<NodeIdx> {
        let n = self.keys.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        // A window of k ranks on each side of the insertion point covers
        // every possible ring-distance winner.
        let split = self.keys.partition_point(|&x| x < key.0);
        let take = (2 * k + 1).min(n);
        let mut cands: Vec<NodeIdx> = (0..take)
            .map(|i| {
                let rank = (split + n - k.min(n) + i) % n;
                self.nodes[rank]
            })
            .collect();
        cands.sort_unstable();
        cands.dedup();
        cands.sort_by(|&a, &b| {
            let (da, db) = (ids[a.idx()].ring_dist(key), ids[b.idx()].ring_dist(key));
            da.cmp(&db).then(ids[a.idx()].0.cmp(&ids[b.idx()].0))
        });
        cands.truncate(k);
        cands
    }

    /// Every endsystem (member or not) whose id falls in `r`, ascending
    /// by id with the wrap seam at the namespace top — byte-for-byte the
    /// enumeration order of the former `BTreeMap` range scans, without
    /// materializing a `Vec`.
    pub fn all_in_range(&self, r: &IdRange) -> impl Iterator<Item = NodeIdx> + '_ {
        // Two half-open rank windows: [a, b) then [c, d).
        let (a, b, c, d) = if r.is_empty() {
            (0, 0, 0, 0)
        } else if r.is_full() {
            (0, self.keys.len(), 0, 0)
        } else {
            let start = r.start().0;
            let end = start.wrapping_add(r.width().expect("not full")); // exclusive
            let lo = self.keys.partition_point(|&k| k < start);
            let hi = self.keys.partition_point(|&k| k < end);
            if start < end {
                (lo, hi, 0, 0)
            } else {
                (lo, self.keys.len(), 0, hi)
            }
        };
        self.nodes[a..b]
            .iter()
            .chain(self.nodes[c..d].iter())
            .copied()
    }
}

/// Set ranks in `[from, to)`, ascending, by word-at-a-time bit scan.
struct SetRanksFwd<'a> {
    words: &'a [u64],
    /// Current word index.
    wi: usize,
    /// Unconsumed bits of `words[wi]` at or after the start cursor.
    cur: u64,
    to: usize,
}

impl<'a> SetRanksFwd<'a> {
    fn new(words: &'a [u64], from: usize, to: usize) -> Self {
        let wi = from / 64;
        let cur = if from < to {
            words[wi] & (u64::MAX << (from % 64))
        } else {
            0
        };
        SetRanksFwd { words, wi, cur, to }
    }
}

impl Iterator for SetRanksFwd<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur != 0 {
                let rank = self.wi * 64 + self.cur.trailing_zeros() as usize;
                if rank >= self.to {
                    return None;
                }
                self.cur &= self.cur - 1;
                return Some(rank);
            }
            self.wi += 1;
            if self.wi * 64 >= self.to {
                return None;
            }
            self.cur = self.words[self.wi];
        }
    }
}

/// Set ranks in `[from, to)`, descending.
struct SetRanksRev<'a> {
    words: &'a [u64],
    wi: usize,
    /// Unconsumed bits of `words[wi]` at or before the end cursor.
    cur: u64,
    from: usize,
}

impl<'a> SetRanksRev<'a> {
    fn new(words: &'a [u64], from: usize, to: usize) -> Self {
        if from >= to {
            return SetRanksRev {
                words,
                wi: 0,
                cur: 0,
                from: usize::MAX,
            };
        }
        let last = to - 1;
        let wi = last / 64;
        let keep = last % 64;
        let mask = if keep == 63 {
            u64::MAX
        } else {
            (1u64 << (keep + 1)) - 1
        };
        SetRanksRev {
            words,
            wi,
            cur: words[wi] & mask,
            from,
        }
    }
}

impl Iterator for SetRanksRev<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.from == usize::MAX {
            return None;
        }
        loop {
            if self.cur != 0 {
                let bit = 63 - self.cur.leading_zeros() as usize;
                let rank = self.wi * 64 + bit;
                if rank < self.from {
                    return None;
                }
                self.cur &= !(1u64 << bit);
                return Some(rank);
            }
            if self.wi == 0 || self.wi * 64 <= self.from {
                return None;
            }
            self.wi -= 1;
            self.cur = self.words[self.wi];
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use super::*;

    /// A universe plus the map baseline, with a pseudorandom subset live.
    fn world(n: usize, seed: u64) -> (Vec<Id>, RingIndex, BTreeMap<u128, NodeIdx>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ids: Vec<Id> = (0..n).map(|_| Id::random(&mut rng)).collect();
        let mut index = RingIndex::new(&ids);
        let mut map = BTreeMap::new();
        for (i, id) in ids.iter().enumerate() {
            if rng.gen_bool(0.7) {
                index.insert(NodeIdx(i as u32));
                map.insert(id.0, NodeIdx(i as u32));
            }
        }
        (ids, index, map)
    }

    /// The map backend's clockwise walk, verbatim.
    fn map_cw(map: &BTreeMap<u128, NodeIdx>, id: Id) -> Vec<NodeIdx> {
        map.range((id.0.wrapping_add(1))..)
            .chain(map.range(..=id.0))
            .map(|(_, &n)| n)
            .collect()
    }

    fn map_ccw(map: &BTreeMap<u128, NodeIdx>, id: Id) -> Vec<NodeIdx> {
        map.range(..id.0)
            .rev()
            .chain(map.range(id.0..).rev())
            .map(|(_, &n)| n)
            .collect()
    }

    #[test]
    fn live_walks_match_map_backend() {
        for seed in 0..8 {
            let (ids, index, map) = world(64, seed);
            let mut probes: Vec<Id> = ids.iter().step_by(7).copied().collect();
            probes.extend([Id(0), Id(1), Id(u128::MAX - 1)]);
            for id in probes {
                let cw: Vec<NodeIdx> = index.cw_live_from(id).collect();
                assert_eq!(cw, map_cw(&map, id), "cw from {id:?} seed {seed}");
                let ccw: Vec<NodeIdx> = index.ccw_live_from(id).collect();
                assert_eq!(ccw, map_ccw(&map, id), "ccw from {id:?} seed {seed}");
                assert_eq!(index.get_live(id.0), map.get(&id.0).copied());
            }
        }
    }

    #[test]
    fn membership_updates_track_live_count() {
        let ids: Vec<Id> = (0..10u128).map(|v| Id(v * 1000)).collect();
        let mut index = RingIndex::new(&ids);
        assert_eq!(index.live_count(), 0);
        index.insert(NodeIdx(3));
        index.insert(NodeIdx(3)); // idempotent
        index.insert(NodeIdx(7));
        assert_eq!(index.live_count(), 2);
        assert_eq!(index.get_live(3000), Some(NodeIdx(3)));
        index.remove(NodeIdx(3));
        index.remove(NodeIdx(3)); // idempotent
        assert_eq!(index.live_count(), 1);
        assert_eq!(index.get_live(3000), None);
    }

    #[test]
    #[should_panic(expected = "endsystem ids must be unique")]
    fn duplicate_ids_panic() {
        let _ = RingIndex::new(&[Id(1), Id(2), Id(1)]);
    }

    /// Naive baseline for range enumeration: linear filter in universe
    /// (sorted-with-wrap-seam) order.
    fn naive_in_range(ids: &[Id], r: &IdRange) -> Vec<NodeIdx> {
        let mut ranked: Vec<(u128, u32)> = ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.0, i as u32))
            .collect();
        ranked.sort_unstable();
        let start = if r.is_full() { 0 } else { r.start().0 };
        let seam = ranked.iter().position(|&(k, _)| k >= start).unwrap_or(0);
        ranked.rotate_left(seam);
        ranked
            .into_iter()
            .filter(|&(k, _)| r.contains(Id(k)))
            .map(|(_, i)| NodeIdx(i))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `all_in_range` vs the naive linear filter across wrapping
        /// ranges, with the edge widths the dissemination splitter
        /// produces: width-1 slivers, the full circle, and ranges whose
        /// exclusive end wraps to exactly 0.
        #[test]
        fn all_in_range_matches_naive(seed in 0u64..1_000, start in any::<u128>(), width in any::<u128>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let ids: Vec<Id> = (0..33).map(|_| Id::random(&mut rng)).collect();
            let index = RingIndex::new(&ids);
            let ranges = [
                IdRange::new(Id(start), width),
                IdRange::new(Id(start), 1),
                IdRange::FULL,
                IdRange::EMPTY,
                // Exclusive end exactly 0 (wraps the seam).
                IdRange::new(Id(start), start.wrapping_neg().max(1)),
                IdRange::between(Id(u128::MAX), Id(1)),
            ];
            for r in ranges {
                let got: Vec<NodeIdx> = index.all_in_range(&r).collect();
                prop_assert_eq!(got, naive_in_range(&ids, &r), "range {}", r);
            }
        }
    }
}
