//! Full stack over the CorpNet-like router topology (rather than the
//! uniform test fabric): latencies now span sub-millisecond LAN to
//! intercontinental WAN, which exercises timeout/reissue margins and the
//! proximity structure of routing.

use seaweed::harness::{Availability, WorldConfig};
use seaweed_sim::NodeIdx;
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

#[test]
fn query_over_corpnet_topology() {
    let n = 120;
    let seed = 23;
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let tables: Vec<Table> = (0..n)
        .map(|node| {
            let mut t = Table::new(schema.clone());
            t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
                .unwrap();
            t
        })
        .collect();
    let mut cfg = WorldConfig::new(n, seed);
    cfg.corpnet = true;
    let (mut eng, mut sw) = cfg.build_with_tables(
        tables,
        Availability::AllUp {
            stagger: Duration::from_millis(300),
        },
    );
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(10));
    assert_eq!(sw.overlay.num_joined(), n);

    // Take a fifth down, query, and verify the usual guarantees hold with
    // realistic WAN latencies.
    let t0 = eng.now();
    for i in 0..n / 5 {
        eng.schedule_down(t0 + Duration::from_secs(i as u64), NodeIdx((i * 5) as u32));
    }
    sw.run_until(&mut eng, t0 + Duration::from_mins(5));

    let origin = NodeIdx((n - 1) as u32);
    let injected = eng.now();
    let h = sw
        .inject_query(
            &mut eng,
            origin,
            "SELECT SUM(v) FROM T WHERE flag = 1",
            Duration::from_hours(4),
            &schema,
        )
        .unwrap();
    let hz = eng.now() + Duration::from_mins(3);
    sw.run_until(&mut eng, hz);

    let q = sw.query(h);
    let p = q.predictor.as_ref().expect("predictor over WAN");
    // WAN latency: predictor still arrives within seconds.
    let latency = q.predictor_at.unwrap().since(injected);
    assert!(latency < Duration::from_secs(30), "latency {latency}");
    assert!(
        latency > Duration::from_millis(2),
        "suspiciously instant over a WAN"
    );
    assert!((p.total_rows() - n as f64).abs() <= 2.0);
    assert_eq!(q.rows(), (n - n / 5) as u64);

    // Bring the missing endsystems back; exactly-once convergence.
    let t1 = eng.now();
    for i in 0..n / 5 {
        eng.schedule_up(
            t1 + Duration::from_mins(i as u64 + 1),
            NodeIdx((i * 5) as u32),
        );
    }
    sw.run_until(&mut eng, t1 + Duration::from_hours(1));
    let q = sw.query(h);
    assert_eq!(q.rows(), n as u64);
    let expected: f64 = (1..=n as i64).map(|v| v as f64).sum();
    assert_eq!(q.latest.unwrap().finish(), Some(expected));
}
