//! Cross-crate integration tests: Anemone workload + availability traces
//! + the full Seaweed protocol stack, checked against ground truth
//!   computed directly from the generated tables.

use seaweed::harness::{Availability, WorldConfig};
use seaweed_availability::FarsiteConfig;
use seaweed_core::provider::DataProvider;
use seaweed_sim::NodeIdx;
use seaweed_store::Query;
use seaweed_types::{Duration, Time};
use seaweed_workload::{flow_schema, paper_queries, AnemoneConfig};

/// All four paper queries on a fully available Anemone network must
/// produce exactly the sum of per-endsystem local answers.
#[test]
fn paper_queries_match_local_ground_truth() {
    let n = 60;
    let seed = 5;
    let anemone = AnemoneConfig {
        horizon: Duration::from_days(2),
        ..AnemoneConfig::default()
    };
    let cfg = WorldConfig::new(n, seed);
    let (mut eng, mut sw) = cfg.build_anemone(
        &anemone,
        Availability::AllUp {
            stagger: Duration::from_millis(200),
        },
    );
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(10));
    assert_eq!(sw.overlay.num_joined(), n);

    let schema = flow_schema();
    for pq in paper_queries() {
        let h = sw
            .inject_query(
                &mut eng,
                NodeIdx(0),
                pq.sql,
                Duration::from_hours(2),
                &schema,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", pq.sql));
        let hz = eng.now() + Duration::from_mins(3);
        sw.run_until(&mut eng, hz);

        // Ground truth: merge each endsystem's exact local aggregate.
        let bound = Query::parse(pq.sql).unwrap().bind(&schema, 0).unwrap();
        let mut truth = seaweed_store::Aggregate::empty(bound.agg);
        for node in 0..n {
            truth.merge(&sw.provider.execute(node, &bound).unwrap());
        }

        let q = sw.query(h);
        assert_eq!(q.rows(), truth.rows, "{}: row count", pq.sql);
        let got = q.latest.unwrap().finish();
        let want = truth.finish();
        match (got, want) {
            (Some(g), Some(w)) => {
                assert!(
                    (g - w).abs() <= w.abs() * 1e-9 + 1e-6,
                    "{}: {g} != {w}",
                    pq.sql
                )
            }
            (g, w) => assert_eq!(g, w, "{}", pq.sql),
        }
        // Predictor total should be close to the true relevant-row count
        // (histogram estimation error only).
        let p = q.predictor.as_ref().expect("predictor");
        let rel_err = (p.total_rows() - truth.rows as f64).abs() / (truth.rows as f64).max(1.0);
        assert!(
            rel_err < 0.05,
            "{}: predictor total off by {:.1}%",
            pq.sql,
            rel_err * 100.0
        );
    }
}

/// Under a Farsite-like availability trace with traffic gated on uptime,
/// prediction made at injection must match the completeness actually
/// observed hours later (the Figures 5–8 experiment, in miniature).
#[test]
fn completeness_prediction_tracks_reality_on_farsite_trace() {
    let n = 150;
    let seed = 11;
    let weeks = 2u64;
    let (trace, _) = FarsiteConfig::small(n, weeks).generate(seed);
    let anemone = AnemoneConfig {
        horizon: Duration::WEEK * weeks,
        ..AnemoneConfig::default()
    };
    let cfg = WorldConfig::new(n, seed);
    let (mut eng, mut sw) = cfg.build_anemone(&anemone, Availability::Trace(&trace));

    // Warm up one week (availability model learning), inject Tue 02:00 of
    // week 2 — deep night, when diurnal machines are off.
    let inject_at = Time::ZERO + Duration::from_days(8) + Duration::from_hours(2);
    sw.run_until(&mut eng, inject_at);
    let origin = eng.up_nodes().next().expect("someone is up");
    let schema = flow_schema();
    let h = sw
        .inject_query(
            &mut eng,
            origin,
            "SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80",
            Duration::from_days(2),
            &schema,
        )
        .unwrap();
    let hz = eng.now() + Duration::from_mins(2);
    sw.run_until(&mut eng, hz);

    let (total, pred_now, pred_12h) = {
        let q = sw.query(h);
        let p = q.predictor.as_ref().expect("predictor");
        (
            p.total_rows(),
            p.completeness_at(Duration::ZERO),
            p.completeness_at(Duration::from_hours(12)),
        )
    };
    assert!(total > 0.0);
    // Night time: a noticeable fraction of machines are off...
    assert!(pred_now < 0.98, "predicted immediate {pred_now}");
    // ...but the morning brings most of them back.
    assert!(
        pred_12h > pred_now + 0.01,
        "prediction should grow by morning"
    );

    // Compare prediction with actuality at several horizons.
    for hours in [1u64, 6, 12, 24] {
        sw.run_until(&mut eng, inject_at + Duration::from_hours(hours));
        let q = sw.query(h);
        let actual = q.rows() as f64 / total;
        let predicted = q
            .predictor
            .as_ref()
            .expect("predictor")
            .completeness_at(Duration::from_hours(hours));
        assert!(
            (actual - predicted).abs() < 0.15,
            "at +{hours}h: actual {actual:.3} vs predicted {predicted:.3}"
        );
    }
}

/// The simulated Seaweed maintenance bandwidth should agree with Eq. 2 of
/// the analytic model when fed the measured parameters.
#[test]
fn analytic_model_matches_simulation_order_of_magnitude() {
    use seaweed_analytic::{maintenance_bps, Architecture, ModelParams};
    use seaweed_sim::TrafficClass;

    let n = 120;
    let seed = 17;
    let weeks = 1u64;
    let (trace, _) = FarsiteConfig::small(n, weeks).generate(seed);
    let stats = trace.stats();
    let anemone = AnemoneConfig {
        horizon: Duration::WEEK * weeks,
        ..AnemoneConfig::default()
    };
    let cfg = WorldConfig::new(n, seed);
    let (mut eng, mut sw) = cfg.build_anemone(&anemone, Availability::Trace(&trace));
    sw.run_until(&mut eng, trace.horizon());

    // Mean summary size h over endsystems.
    let h_mean: f64 = (0..n)
        .map(|i| f64::from(sw.provider.summary_wire_size(i)))
        .sum::<f64>()
        / n as f64;
    let k = sw.cfg.k_metadata as f64;
    let push_rate = 1.0 / sw.cfg.push_period.as_secs_f64();

    let report = eng.finish();
    let measured_total_bps = report.mean_tx_per_online_bps(TrafficClass::Maintenance)
        * stats.mean_availability
        * n as f64;

    let params = ModelParams {
        n: n as f64,
        f_on: stats.mean_availability,
        c: stats.churn_rate(n),
        k,
        h: h_mean,
        a: 48.0,
        p: push_rate,
        ..ModelParams::default()
    };
    let predicted = maintenance_bps(Architecture::Seaweed, &params);
    let ratio = measured_total_bps / predicted;
    assert!(
        (0.3..3.0).contains(&ratio),
        "measured {measured_total_bps:.0} B/s vs Eq.2 {predicted:.0} B/s (ratio {ratio:.2})"
    );
}

/// Row-count estimation from replicated summaries is accurate for the
/// paper's query shapes on real workload data (§4.3.2 claims <0.5% on
/// total row count).
#[test]
fn summary_estimates_are_accurate_on_anemone_data() {
    let n = 40;
    let anemone = AnemoneConfig {
        horizon: Duration::from_days(2),
        ..AnemoneConfig::default()
    };
    let schema = flow_schema();
    let tables: Vec<_> = (0..n)
        .map(|i| anemone.generate_flow_table(3, i, &[]))
        .collect();
    let provider = seaweed_core::LiveTables::new(tables);

    for pq in paper_queries() {
        let bound = Query::parse(pq.sql).unwrap().bind(&schema, 0).unwrap();
        let mut est_total = 0.0;
        let mut exact_total = 0u64;
        for node in 0..n {
            est_total += provider.estimate_rows(node, &bound);
            exact_total += provider.exact_rows(node, &bound);
        }
        let rel = (est_total - exact_total as f64).abs() / (exact_total as f64).max(1.0);
        assert!(
            rel < 0.02,
            "{}: estimate {est_total:.0} vs exact {exact_total} ({:.2}% off)",
            pq.sql,
            rel * 100.0
        );
    }
}
