//! Quickstart: a small Seaweed network answering one query.
//!
//! Builds 50 endsystems with tiny synthetic tables, injects a SUM query,
//! and prints the completeness predictor and the incremental result as it
//! converges — including what happens when some endsystems are off.
//!
//! Run with: `cargo run --example quickstart`

use seaweed::harness::{Availability, WorldConfig};
use seaweed_sim::NodeIdx;
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

fn main() {
    let n = 50;
    // Every endsystem stores a few rows of a shared `Metrics` table.
    let schema = Schema::new(
        "Metrics",
        vec![
            ColumnDef::new("sensor", DataType::Int, true),
            ColumnDef::new("reading", DataType::Int, true),
        ],
    );
    let tables: Vec<Table> = (0..n)
        .map(|node| {
            let mut t = Table::new(schema.clone());
            for s in 0..4i64 {
                t.insert(vec![Value::Int(s), Value::Int(node as i64 * 10 + s)])
                    .unwrap();
            }
            t
        })
        .collect();

    let cfg = WorldConfig::new(n, 7);
    let (mut eng, mut sw) = cfg.build_with_tables(
        tables,
        Availability::AllUp {
            stagger: Duration::from_millis(500),
        },
    );

    // Let everyone join and replicate metadata.
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(5));
    println!("{} endsystems joined the overlay", sw.overlay.num_joined());

    // Knock a fifth of the endsystems offline before querying.
    let t0 = eng.now();
    for i in 0..n / 5 {
        eng.schedule_down(t0 + Duration::from_secs(i as u64), NodeIdx((i * 5) as u32));
    }
    sw.run_until(&mut eng, t0 + Duration::from_mins(5));
    println!("{} endsystems currently available", eng.num_up());

    // Inject a one-shot aggregate query from endsystem 1.
    let sql = "SELECT SUM(reading) FROM Metrics WHERE sensor = 2";
    let h = sw
        .inject_query(&mut eng, NodeIdx(1), sql, Duration::from_hours(12), &schema)
        .expect("valid query");
    println!("\ninjected: {sql}");

    let horizon = eng.now() + Duration::from_mins(2);
    sw.run_until(&mut eng, horizon);

    // The completeness predictor tells the user how long full coverage
    // will take before the data has arrived.
    let q = sw.query(h);
    let p = q.predictor.as_ref().expect("predictor arrives in seconds");
    println!(
        "predictor: {:.0} of {:.0} relevant rows available now ({:.0}%)",
        p.immediate_rows(),
        p.total_rows(),
        100.0 * p.completeness_at(Duration::ZERO),
    );
    println!(
        "current result: SUM = {:?} over {} rows ({:.0}% complete)",
        q.latest.and_then(|a| a.finish()),
        q.rows(),
        100.0 * q.completeness().unwrap_or(0.0),
    );

    // Bring the missing endsystems back and watch completeness converge.
    let t1 = eng.now();
    for i in 0..n / 5 {
        eng.schedule_up(
            t1 + Duration::from_mins(1 + i as u64),
            NodeIdx((i * 5) as u32),
        );
    }
    sw.run_until(&mut eng, t1 + Duration::from_hours(1));

    let q = sw.query(h);
    println!(
        "\nafter the stragglers returned: SUM = {:?} over {} rows ({:.0}% complete)",
        q.latest.and_then(|a| a.finish()),
        q.rows(),
        100.0 * q.completeness().unwrap_or(0.0),
    );

    // Ground truth for comparison.
    let truth: i64 = (0..n as i64).map(|node| node * 10 + 2).sum();
    println!("ground truth SUM = {truth}");
}
