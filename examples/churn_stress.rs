//! Seaweed under peer-to-peer churn (the paper's Figure 10 scenario).
//!
//! Replays a Gnutella-like availability trace — departures 23× the
//! enterprise rate — and reports the maintenance overhead breakdown and
//! how query completeness behaves when a third of the network flaps
//! every few hours.
//!
//! Run with: `cargo run --release --example churn_stress`

use seaweed::harness::{Availability, WorldConfig};
use seaweed_availability::GnutellaConfig;
use seaweed_sim::TrafficClass;
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

fn main() {
    let n = 500;
    let seed = 99;
    let hours = 24u64;

    let trace = GnutellaConfig::small(n, hours).generate(seed);
    let stats = trace.stats();
    println!(
        "gnutella-like trace: availability {:.1}%, departures {:.2e}/online/s, mean session {}",
        stats.mean_availability * 100.0,
        stats.departure_rate_per_online_sec,
        stats.mean_session,
    );

    // Every peer shares a tiny table of items it hosts.
    let schema = Schema::new(
        "Items",
        vec![
            ColumnDef::new("kind", DataType::Int, true),
            ColumnDef::new("size_kb", DataType::Int, true),
        ],
    );
    let tables: Vec<Table> = (0..n)
        .map(|node| {
            let mut t = Table::new(schema.clone());
            for i in 0..20i64 {
                t.insert(vec![
                    Value::Int(i % 4),
                    Value::Int((node as i64 * 7 + i * 13) % 5000),
                ])
                .unwrap();
            }
            t
        })
        .collect();

    let mut cfg = WorldConfig::new(n, seed);
    cfg.collect_cdf = true;
    let (mut eng, mut sw) = cfg.build_with_tables(tables, Availability::Trace(&trace));

    // Warm up half the trace, then query.
    sw.run_until(&mut eng, Time::ZERO + Duration::from_hours(hours / 2));
    let origin = eng.up_nodes().next().expect("some peer up");
    let h = sw
        .inject_query(
            &mut eng,
            origin,
            "SELECT COUNT(*) FROM Items WHERE kind = 1",
            Duration::from_hours(hours / 2),
            &schema,
        )
        .expect("valid query");
    println!(
        "\ninjected COUNT query at t={} from peer {origin:?} ({} peers up)",
        eng.now(),
        eng.num_up()
    );

    for after in [0u64, 1, 2, 4, 8] {
        let t = Time::ZERO + Duration::from_hours(hours / 2 + after) + Duration::from_mins(2);
        sw.run_until(&mut eng, t);
        let q = sw.query(h);
        let predicted = q
            .predictor
            .as_ref()
            .map(|p| 100.0 * p.completeness_at(Duration::from_hours(after)));
        println!(
            "  +{after:>2}h: rows {:>5}  actual {:>5.1}%  predicted {:>5.1}%  (peers up: {})",
            q.rows(),
            q.completeness().map_or(0.0, |c| c * 100.0),
            predicted.unwrap_or(0.0),
            eng.num_up(),
        );
    }

    // Finish the trace and report the overhead breakdown (Figure 10's
    // metric: bytes/sec per online endsystem).
    sw.run_until(&mut eng, trace.horizon());
    println!("\nprotocol counters: {:?}", sw.stats);
    println!("overlay routing: {:?}", sw.overlay.stats);
    let report = eng.finish();
    println!("\nmean tx bandwidth per online peer:");
    for (label, class) in [
        ("pastry (heartbeats/joins)", TrafficClass::Overlay),
        ("seaweed maintenance", TrafficClass::Maintenance),
        ("query traffic", TrafficClass::Query),
    ] {
        println!(
            "  {label:<28}{:>8.1} B/s",
            report.mean_tx_per_online_bps(class)
        );
    }
    println!(
        "  {:<28}{:>8.1} B/s",
        "total",
        report.mean_tx_total_per_online_bps()
    );
    println!(
        "  99th percentile (node-hour):{:>8.1} B/s; zero-hours fraction {:.2}",
        report.tx_percentile(99.0),
        report.tx_zero_fraction(),
    );
}
