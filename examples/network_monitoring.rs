//! Enterprise network monitoring — the paper's motivating scenario.
//!
//! Endsystems record their own traffic into Anemone `Flow` tables;
//! availability follows a Farsite-like enterprise trace (diurnal office
//! machines, always-on servers). A network operator injects the paper's
//! headline query overnight and uses the completeness predictor to decide
//! how long to wait: most machines are off until morning, and the
//! predictor says exactly that.
//!
//! Run with: `cargo run --release --example network_monitoring`

use seaweed::harness::{Availability, WorldConfig};
use seaweed_availability::FarsiteConfig;
use seaweed_types::{Duration, Time};
use seaweed_workload::{flow_schema, AnemoneConfig, QUERY_HTTP_BYTES};

fn main() {
    let n = 300;
    let weeks = 2;
    let seed = 21;

    println!("generating {n} endsystems with {weeks} weeks of traffic and availability...");
    let (trace, _profiles) = FarsiteConfig::small(n, weeks).generate(seed);
    let stats = trace.stats();
    println!(
        "trace: mean availability {:.1}%, departure rate {:.2e}/online/s",
        stats.mean_availability * 100.0,
        stats.departure_rate_per_online_sec,
    );

    let anemone = AnemoneConfig {
        horizon: Duration::WEEK * weeks,
        ..AnemoneConfig::default()
    };
    let cfg = WorldConfig::new(n, seed);
    let (mut eng, mut sw) = cfg.build_anemone(&anemone, Availability::Trace(&trace));

    // Warm up for a week so endsystems learn their availability models.
    let inject_at = Time::ZERO + Duration::from_days(8) + Duration::from_hours(22); // Tue 22:00
    sw.run_until(&mut eng, inject_at);
    println!(
        "\nTuesday 22:00 of week 2: {} of {n} endsystems online",
        eng.num_up()
    );

    // Find a live origin and ask: how much web traffic was there?
    let origin = eng.up_nodes().next().expect("some endsystem is up");
    let schema = flow_schema();
    let h = sw
        .inject_query(
            &mut eng,
            origin,
            QUERY_HTTP_BYTES,
            Duration::from_days(2),
            &schema,
        )
        .expect("valid query");
    println!("operator injects: {QUERY_HTTP_BYTES}");

    let predictor_wait = eng.now() + Duration::from_mins(1);
    sw.run_until(&mut eng, predictor_wait);

    let q = sw.query(h);
    let p = q.predictor.as_ref().expect("predictor");
    println!("\ncompleteness predictor (seconds after injection):");
    println!(
        "  available now:        {:>6.1}% of ~{:.0} relevant rows",
        100.0 * p.completeness_at(Duration::ZERO),
        p.total_rows(),
    );
    for (label, d) in [
        ("within 1 hour", Duration::from_hours(1)),
        ("within 4 hours", Duration::from_hours(4)),
        ("within 12 hours (morning)", Duration::from_hours(12)),
        ("within 2 days", Duration::from_days(2)),
    ] {
        println!("  {label:<26}{:>6.1}%", 100.0 * p.completeness_at(d));
    }
    if let Some(d) = p.delay_for_completeness(0.99) {
        println!("  predicted wait for 99%:   {d}");
    }

    // Watch actual completeness vs the prediction as the night passes and
    // people arrive at work.
    println!(
        "\n{:<24}{:>12}{:>12}{:>12}",
        "time", "rows", "actual %", "predicted %"
    );
    let total = p.total_rows();
    for hours in [0u64, 1, 2, 4, 8, 10, 12, 16, 24] {
        let t = inject_at + Duration::from_hours(hours) + Duration::from_mins(1);
        sw.run_until(&mut eng, t);
        let q = sw.query(h);
        let p = q.predictor.as_ref().expect("predictor");
        println!(
            "{:<24}{:>12}{:>11.1}%{:>11.1}%",
            format!("{}", t),
            q.rows(),
            100.0 * q.rows() as f64 / total,
            100.0 * p.completeness_at(Duration::from_hours(hours)),
        );
    }

    let q = sw.query(h);
    println!(
        "\nfinal answer: SUM(Bytes) = {:.3e} over {} flow records",
        q.latest.and_then(|a| a.finish()).unwrap_or(0.0),
        q.rows(),
    );
}
