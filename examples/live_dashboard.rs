//! Live dashboard — the extension features working together.
//!
//! The paper sketches two extensions beyond one-shot queries: continuous
//! queries over the same failure-resilient aggregation trees (§3.4) and
//! selective replication of derived values ("views") answered from
//! metadata alone (§3.2.2). This example runs an operations dashboard on
//! both:
//!
//! * a **continuous query** tracks error counts over a sliding 15-minute
//!   window, re-evaluated every 5 minutes by every endsystem;
//! * a **replicated view** answers "total requests ever served, fleet-
//!   wide" in seconds, covering even machines that are currently down
//!   (with push-period staleness).
//!
//! Run with: `cargo run --release --example live_dashboard`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seaweed_core::{LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig};
use seaweed_sim::{Engine, NodeIdx, SimConfig, UniformTopology};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

fn main() {
    let n = 120;
    let seed = 44;
    let mut rng = StdRng::seed_from_u64(seed);

    // Each server logs requests: a timestamp and whether it errored.
    // Errors spike between minutes 40 and 60 — the incident the
    // dashboard should surface.
    let schema = Schema::new(
        "Log",
        vec![
            ColumnDef::new("ts", DataType::Int, true),
            ColumnDef::new("is_error", DataType::Int, true),
        ],
    );
    let tables: Vec<Table> = (0..n)
        .map(|_| {
            let mut t = Table::new(schema.clone());
            for minute in 0..180i64 {
                for _ in 0..3 {
                    let incident = (40..60).contains(&minute);
                    let p_err = if incident { 0.35 } else { 0.02 };
                    let err = i64::from(rng.gen::<f64>() < p_err);
                    t.insert(vec![
                        Value::Int(minute * 60 + rng.gen_range(0..60)),
                        Value::Int(err),
                    ])
                    .unwrap();
                }
            }
            t
        })
        .collect();

    let mut eng: SeaweedEngine = Engine::new(
        Box::new(UniformTopology::new(n, Duration::from_millis(4))),
        SimConfig {
            seed,
            ..Default::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    let provider = LiveTables::new(tables);
    let mut sw = Seaweed::new(
        overlay,
        provider,
        SeaweedConfig {
            seed,
            ..Default::default()
        },
    );

    // Register the fleet-wide totals view BEFORE machines come up so the
    // very first metadata pushes carry it.
    let v_total = sw
        .register_view("SELECT COUNT(*) FROM Log", &schema)
        .expect("view");

    for i in 0..n {
        eng.schedule_up(Time::from_micros(1 + i as u64 * 200_000), NodeIdx(i as u32));
    }
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(5));
    println!("{} servers up; replicated view registered", eng.num_up());

    // Standing error monitor: errors in the last 15 minutes, re-evaluated
    // every 5 minutes.
    let monitor = sw
        .inject_continuous_query(
            &mut eng,
            NodeIdx(0),
            "SELECT SUM(is_error) FROM Log WHERE ts >= NOW() - 900 AND ts <= NOW()",
            Duration::from_mins(5),
            Duration::from_hours(4),
            &schema,
        )
        .expect("valid continuous query");

    println!(
        "\n{:<10}{:>18}{:>14}",
        "time", "errors (15 min)", "servers up"
    );
    for minute in [10u64, 20, 30, 45, 55, 65, 80, 100] {
        // A little churn along the way.
        if minute == 30 {
            for i in 50..58 {
                eng.schedule_down(eng.now() + Duration::from_secs(i), NodeIdx(i as u32));
            }
        }
        if minute == 65 {
            for i in 50..58 {
                eng.schedule_up(eng.now() + Duration::from_secs(i), NodeIdx(i as u32));
            }
        }
        sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(minute));
        let q = sw.query(monitor);
        let errors = q.latest.and_then(|a| a.finish()).unwrap_or(0.0);
        let marker = if errors > 500.0 { "  << incident!" } else { "" };
        println!(
            "{:<10}{:>18.0}{:>14}{marker}",
            format!("{}m", minute),
            errors,
            eng.num_up()
        );
    }

    // One view query answers the fleet-wide total instantly — including
    // the servers currently down.
    let asked = eng.now();
    let h = sw.query_view(&mut eng, NodeIdx(20), v_total, Duration::from_mins(30));
    let hz = eng.now() + Duration::from_secs(30);
    sw.run_until(&mut eng, hz);
    let q = sw.query(h);
    println!(
        "\nfleet-wide total requests (replicated view): {:.0} across {} endsystems, answered in {}",
        q.latest.and_then(|a| a.finish()).unwrap_or(0.0),
        q.latest_version, // coverage count for view answers
        q.predictor_at
            .map_or_else(|| "?".into(), |t| t.since(asked).to_string()),
    );
    println!("ground truth: {} requests", n * 180 * 3);
}
