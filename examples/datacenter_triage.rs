//! Data-center triage — Seaweed at the "small" end of its scale range.
//!
//! A data center's machines are highly available, but a whole rack just
//! lost power. The operator needs aggregate statistics *now* and wants to
//! know exactly how much data is stranded on the dead rack and when it
//! will be back. Completeness prediction turns "the numbers are partial"
//! into "the numbers cover 93.7% of the data; the rest returns with the
//! rack in ~30 minutes".
//!
//! Run with: `cargo run --release --example datacenter_triage`

use seaweed::harness::{Availability, WorldConfig};
use seaweed_sim::NodeIdx;
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

const RACKS: usize = 16;
const PER_RACK: usize = 24;

fn main() {
    let n = RACKS * PER_RACK;
    let seed = 33;

    // Each server records request-level metrics: service, latency, errors.
    let schema = Schema::new(
        "Requests",
        vec![
            ColumnDef::new("service", DataType::Str, true),
            ColumnDef::new("latency_us", DataType::Int, true),
            ColumnDef::new("is_error", DataType::Int, true),
        ],
    );
    let services = ["frontend", "search", "cart", "payments"];
    let tables: Vec<Table> = (0..n)
        .map(|node| {
            let mut t = Table::new(schema.clone());
            // Front-end racks serve more traffic; payment servers are rare.
            let svc = services[node % services.len()];
            let rows = 200 + (node % 7) * 40;
            for i in 0..rows {
                let latency = 800 + ((node * 37 + i * 101) % 9000) as i64;
                let err = i64::from((node + i) % 50 == 0);
                t.insert(vec![Value::from(svc), Value::Int(latency), Value::Int(err)])
                    .unwrap();
            }
            t
        })
        .collect();

    let cfg = WorldConfig::new(n, seed);
    let (mut eng, mut sw) = cfg.build_with_tables(
        tables,
        Availability::AllUp {
            stagger: Duration::from_millis(100),
        },
    );
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(10));
    println!("{} servers up across {RACKS} racks", eng.num_up());

    // Simulate a few power blips earlier in the day so availability
    // models have history (machines that came back within ~30 min).
    let mut t = eng.now();
    for rack in 0..4 {
        for s in 0..PER_RACK {
            let node = NodeIdx((rack * PER_RACK + s) as u32);
            eng.schedule_down(t + Duration::from_mins(1), node);
            eng.schedule_up(t + Duration::from_mins(31), node);
        }
        t += Duration::from_hours(2);
    }
    sw.run_until(&mut eng, t + Duration::from_hours(1));

    // Rack 3 loses power now.
    let dead_rack = 3usize;
    let outage_at = eng.now();
    for s in 0..PER_RACK {
        eng.schedule_down(
            outage_at + Duration::from_secs(1),
            NodeIdx((dead_rack * PER_RACK + s) as u32),
        );
    }
    // Ops will restore it in ~30 minutes, consistent with history.
    for s in 0..PER_RACK {
        eng.schedule_up(
            outage_at + Duration::from_mins(32),
            NodeIdx((dead_rack * PER_RACK + s) as u32),
        );
    }
    // Let the failure be detected before the operator reacts.
    sw.run_until(&mut eng, outage_at + Duration::from_mins(3));
    println!("\nrack {dead_rack} lost power: {} servers up", eng.num_up());

    // Triage queries.
    let origin = NodeIdx((n - 1) as u32);
    let queries = [
        "SELECT COUNT(*) FROM Requests WHERE is_error = 1",
        "SELECT AVG(latency_us) FROM Requests WHERE service = 'search'",
        "SELECT MAX(latency_us) FROM Requests WHERE service = 'payments'",
    ];
    let mut handles = Vec::new();
    for sql in queries {
        let h = sw
            .inject_query(&mut eng, origin, sql, Duration::from_hours(2), &schema)
            .expect("valid query");
        handles.push((sql, h));
    }
    let hz = eng.now() + Duration::from_mins(1);
    sw.run_until(&mut eng, hz);

    println!("\ntriage results one minute after injection:");
    for (sql, h) in &handles {
        let q = sw.query(*h);
        let p = q.predictor.as_ref().expect("predictor");
        let eta = p.delay_for_completeness(0.999);
        println!("  {sql}");
        println!(
            "    value so far: {:?}  coverage {:.1}%  predicted 100% in {}",
            q.latest
                .and_then(|a| a.finish())
                .map(|v| (v * 10.0).round() / 10.0),
            100.0 * q.completeness().unwrap_or(0.0),
            eta.map_or_else(|| "never".to_string(), |d| d.to_string()),
        );
    }

    // After the rack returns, answers are complete.
    sw.run_until(&mut eng, outage_at + Duration::from_hours(1));
    println!("\nafter rack {dead_rack} returned:");
    for (sql, h) in &handles {
        let q = sw.query(*h);
        println!(
            "  {sql}\n    final value: {:?} over {} rows ({:.1}% complete)",
            q.latest
                .and_then(|a| a.finish())
                .map(|v| (v * 10.0).round() / 10.0),
            q.rows(),
            100.0 * q.completeness().unwrap_or(0.0),
        );
    }
}
