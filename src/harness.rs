//! Convenience harness for assembling a full Seaweed world:
//! engine + topology + availability trace + workload + overlay + protocol
//! stack. Examples, integration tests and experiment binaries all build
//! on this.

use seaweed_availability::AvailabilityTrace;
use seaweed_core::{LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig};
use seaweed_sim::{CorpNetTopology, Engine, NodeIdx, SimConfig, Topology, UniformTopology};
use seaweed_store::Table;
use seaweed_types::{Duration, Time};
use seaweed_workload::AnemoneConfig;

/// How endsystem availability is driven.
#[derive(Debug)]
pub enum Availability<'a> {
    /// Everyone comes up near t=0 (staggered by `stagger` per node) and
    /// stays up.
    AllUp { stagger: Duration },
    /// Replay a trace (Farsite-like, Gnutella-like, or custom).
    Trace(&'a AvailabilityTrace),
}

/// World construction knobs.
#[derive(Debug)]
pub struct WorldConfig {
    pub n: usize,
    pub seed: u64,
    /// Use the CorpNet-like router topology (packet-level experiments);
    /// otherwise a uniform-latency fabric.
    pub corpnet: bool,
    /// One-way latency for the uniform fabric.
    pub uniform_latency: Duration,
    /// Collect per-(node,hour) bandwidth samples for CDFs.
    pub collect_cdf: bool,
    /// Uniform network message loss rate.
    pub loss_rate: f64,
    pub overlay: OverlayConfig,
    pub seaweed: SeaweedConfig,
}

impl WorldConfig {
    /// Sensible defaults for `n` endsystems under `seed`.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        WorldConfig {
            n,
            seed,
            corpnet: false,
            uniform_latency: Duration::from_millis(5),
            collect_cdf: false,
            loss_rate: 0.0,
            overlay: OverlayConfig {
                seed,
                ..Default::default()
            },
            seaweed: SeaweedConfig {
                seed,
                ..Default::default()
            },
        }
    }

    fn topology(&self) -> Box<dyn Topology> {
        if self.corpnet {
            Box::new(CorpNetTopology::new(self.n, self.seed))
        } else {
            Box::new(UniformTopology::new(self.n, self.uniform_latency))
        }
    }

    /// Builds a world over explicit per-endsystem tables.
    #[must_use]
    pub fn build_with_tables(
        &self,
        tables: Vec<Table>,
        availability: Availability<'_>,
    ) -> (SeaweedEngine, Seaweed<LiveTables>) {
        assert_eq!(tables.len(), self.n);
        let mut eng: SeaweedEngine = Engine::new(
            self.topology(),
            SimConfig {
                seed: self.seed,
                loss_rate: self.loss_rate,
                collect_cdf: self.collect_cdf,
                ..SimConfig::default()
            },
        );
        let overlay = Overlay::new(Overlay::random_ids(self.n, self.seed), self.overlay.clone());
        let provider = LiveTables::new(tables);
        let sw = Seaweed::new(overlay, provider, self.seaweed.clone());
        match availability {
            Availability::AllUp { stagger } => {
                for i in 0..self.n {
                    eng.schedule_up(
                        Time::from_micros(1 + i as u64 * stagger.as_micros()),
                        NodeIdx(i as u32),
                    );
                }
            }
            Availability::Trace(trace) => trace.replay_into(&mut eng),
        }
        (eng, sw)
    }

    /// Builds a world whose endsystems hold Anemone `Flow` fragments.
    /// When a trace is supplied, traffic is gated on each endsystem's
    /// uptime (machines generate no data while off).
    #[must_use]
    pub fn build_anemone(
        &self,
        anemone: &AnemoneConfig,
        availability: Availability<'_>,
    ) -> (SeaweedEngine, Seaweed<LiveTables>) {
        let tables: Vec<Table> = (0..self.n)
            .map(|node| {
                let intervals = match &availability {
                    Availability::Trace(t) => t.intervals(node).to_vec(),
                    Availability::AllUp { .. } => Vec::new(),
                };
                anemone.generate_flow_table(self.seed, node, &intervals)
            })
            .collect();
        self.build_with_tables(tables, availability)
    }
}

/// Runs the world until the engine clock reaches `until`.
pub fn run_until(eng: &mut SeaweedEngine, sw: &mut Seaweed<LiveTables>, until: Time) {
    sw.run_until(eng, until);
}
