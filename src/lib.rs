#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
//! # Seaweed — delay aware querying over highly distributed in-situ data
//!
//! This is the facade crate for a full reproduction of *"Delay Aware
//! Querying with Seaweed"* (Narayanan, Donnelly, Mortier, Rowstron; VLDB
//! 2006). It re-exports every layer of the stack:
//!
//! * [`types`] — ids, namespace ranges, simulated time, SHA-1.
//! * [`sim`] — deterministic discrete-event network simulator + topology.
//! * [`overlay`] — a Pastry structured overlay (MSPastry-style) on the sim.
//! * [`availability`] — endsystem availability traces and models.
//! * [`store`] — a per-endsystem relational engine with histograms and a
//!   SQL subset.
//! * [`workload`] — the Anemone network-monitoring workload (Flow/Packet).
//! * [`core`] — the Seaweed protocols: metadata replication, query
//!   dissemination, completeness prediction, result aggregation.
//! * [`analytic`] — analytic scalability models of Seaweed vs Centralized,
//!   DHT-replicated and PIER baselines.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub mod harness;

pub use seaweed_analytic as analytic;
pub use seaweed_availability as availability;
pub use seaweed_core as core;
pub use seaweed_overlay as overlay;
pub use seaweed_sim as sim;
pub use seaweed_store as store;
pub use seaweed_types as types;
pub use seaweed_workload as workload;
