//! Interactive Seaweed demo — the "standalone" face of the codebase.
//!
//! The paper's prototype "can be compiled to run in the simulator or
//! stand-alone" from one codebase; ours is the same protocol stack driven
//! either by experiment binaries or, here, interactively. A simulated
//! network of endsystems with Anemone data runs under your control:
//!
//! ```text
//! > help
//! > advance 10m                 # move simulated time forward
//! > down 3 4 5                  # power endsystems off
//! > query SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80
//! > status 0                    # predictor + incremental result
//! > up 3 4 5
//! > advance 1h
//! > status 0
//! ```
//!
//! Run with: `cargo run --release --bin seaweed-demo [-- --n 100]`
//! Commands can also be piped on stdin for scripted demos.

use std::io::{BufRead, Write};

use seaweed::harness::{Availability, WorldConfig};
use seaweed_core::{LiveTables, QueryHandle, Seaweed, SeaweedEngine};
use seaweed_sim::NodeIdx;
use seaweed_types::{Duration, Time};
use seaweed_workload::{flow_schema, AnemoneConfig};

struct Demo {
    eng: SeaweedEngine,
    sw: Seaweed<LiveTables>,
    schema: seaweed_store::Schema,
    queries: Vec<QueryHandle>,
    n: usize,
}

fn main() {
    let mut n = 80usize;
    let mut seed = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--n" => n = args.next().and_then(|v| v.parse().ok()).unwrap_or(n),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            other => eprintln!("ignoring {other}"),
        }
    }

    println!("building {n} endsystems with Anemone flow data (seed {seed})...");
    let anemone = AnemoneConfig {
        horizon: Duration::from_days(3),
        ..AnemoneConfig::default()
    };
    let cfg = WorldConfig::new(n, seed);
    let (mut eng, mut sw) = cfg.build_anemone(
        &anemone,
        Availability::AllUp {
            stagger: Duration::from_millis(200),
        },
    );
    sw.run_until(&mut eng, Time::ZERO + Duration::from_mins(5));
    println!(
        "{} endsystems joined; simulated clock at {}",
        sw.overlay.num_joined(),
        eng.now()
    );
    println!("type `help` for commands\n");

    let mut demo = Demo {
        eng,
        sw,
        schema: flow_schema(),
        queries: Vec::new(),
        n,
    };
    let stdin = std::io::stdin();
    loop {
        print!("seaweed> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        if !demo.dispatch(line.trim()) {
            break;
        }
    }
    println!("bye");
}

impl Demo {
    /// Returns false to quit.
    fn dispatch(&mut self, line: &str) -> bool {
        let (cmd, rest) = match line.split_once(' ') {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "" => {}
            "help" => help(),
            "quit" | "exit" => return false,
            "advance" => self.advance(rest),
            "up" => self.toggle(rest, true),
            "down" => self.toggle(rest, false),
            "query" => self.query(rest),
            "status" => self.status(rest),
            "stats" => {
                println!("{:?}", self.sw.stats);
                println!("{:?}", self.sw.overlay.stats);
                println!(
                    "clock {}, {} of {} endsystems up",
                    self.eng.now(),
                    self.eng.num_up(),
                    self.n
                );
            }
            other => println!("unknown command {other:?}; try `help`"),
        }
        true
    }

    fn advance(&mut self, spec: &str) {
        let Some(d) = parse_duration(spec) else {
            println!("usage: advance <number>(s|m|h|d), e.g. `advance 90m`");
            return;
        };
        let until = self.eng.now() + d;
        self.sw.run_until(&mut self.eng, until);
        println!(
            "clock now {} ({} endsystems up)",
            self.eng.now(),
            self.eng.num_up()
        );
    }

    fn toggle(&mut self, rest: &str, up: bool) {
        let mut any = false;
        for tok in rest.split_whitespace() {
            match tok.parse::<u32>() {
                Ok(i) if (i as usize) < self.n => {
                    let at = self.eng.now() + Duration::from_millis(1);
                    if up {
                        self.eng.schedule_up(at, NodeIdx(i));
                    } else {
                        self.eng.schedule_down(at, NodeIdx(i));
                    }
                    any = true;
                }
                _ => println!("bad endsystem index {tok:?}"),
            }
        }
        if any {
            let until = self.eng.now() + Duration::from_secs(1);
            self.sw.run_until(&mut self.eng, until);
            println!("{} endsystems up", self.eng.num_up());
        } else {
            println!(
                "usage: {} <idx> [<idx> ...]",
                if up { "up" } else { "down" }
            );
        }
    }

    fn query(&mut self, sql: &str) {
        if sql.is_empty() {
            println!(
                "usage: query <SQL>  (e.g. query SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80)"
            );
            return;
        }
        let Some(origin) = self.eng.up_nodes().next() else {
            println!("no endsystem is available to originate the query");
            return;
        };
        match self.sw.inject_query(
            &mut self.eng,
            origin,
            sql,
            Duration::from_days(7),
            &self.schema,
        ) {
            Ok(h) => {
                // Let the predictor come back.
                let until = self.eng.now() + Duration::from_mins(1);
                self.sw.run_until(&mut self.eng, until);
                self.queries.push(h);
                println!(
                    "query #{} injected from endsystem {origin:?}",
                    self.queries.len() - 1
                );
                self.print_status(h);
            }
            Err(e) => println!("rejected: {e}"),
        }
    }

    fn status(&mut self, rest: &str) {
        let idx = rest
            .trim()
            .parse::<usize>()
            .unwrap_or(self.queries.len().saturating_sub(1));
        match self.queries.get(idx) {
            None => println!("no such query; `query <sql>` first"),
            Some(&h) => self.print_status(h),
        }
    }

    fn print_status(&self, h: QueryHandle) {
        let q = self.sw.query(h);
        println!("  {}", q.text);
        match &q.predictor {
            None => println!("  predictor: pending"),
            Some(p) => {
                println!(
                    "  predictor: {:.0} rows total; {:.1}% now, {:.1}% +1h, {:.1}% +12h",
                    p.total_rows(),
                    100.0 * p.completeness_at(Duration::ZERO),
                    100.0 * p.completeness_at(Duration::from_hours(1)),
                    100.0 * p.completeness_at(Duration::from_hours(12)),
                );
            }
        }
        match q.latest {
            None => println!("  result: none yet"),
            Some(a) => println!(
                "  result: {:?} over {} rows ({:.1}% complete){}",
                a.finish(),
                a.rows,
                100.0 * q.completeness().unwrap_or(0.0),
                if q.active { "" } else { "  [expired]" },
            ),
        }
    }
}

fn help() {
    println!(
        "\
  advance <dur>      run the simulation forward (e.g. `advance 30m`, `advance 2h`)
  down <i> [...]     power endsystems off
  up <i> [...]       power endsystems back on
  query <sql>        inject a one-shot aggregate query from a live endsystem
  status [k]         show query k's predictor and incremental result (default: last)
  stats              protocol counters and clock
  quit               leave"
    );
}

fn parse_duration(spec: &str) -> Option<Duration> {
    let spec = spec.trim();
    if spec.is_empty() {
        return None;
    }
    let (num, unit) = spec.split_at(spec.len() - 1);
    let v: u64 = num.parse().ok()?;
    match unit {
        "s" => Some(Duration::from_secs(v)),
        "m" => Some(Duration::from_mins(v)),
        "h" => Some(Duration::from_hours(v)),
        "d" => Some(Duration::from_days(v)),
        _ => None,
    }
}
